//! The `rsdc` subcommands. Each returns its output as a string so the
//! logic is unit-testable without capturing stdout.

use crate::args::{ArgError, Args};
use rsdc_core::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::lcp::Lcp;
use rsdc_online::randomized::RandomizedOnline;
use rsdc_online::traits::run as run_online;
use rsdc_sim::{simulate_best_static, simulate_offline_optimum, simulate_online, SimConfig};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::{Bursty, Diurnal, Spiky, Stationary, Trace};
use rsdc_workloads::{fleet_size, io};

/// Any error a command can produce.
#[derive(Debug)]
pub enum CmdError {
    /// Bad command line.
    Args(ArgError),
    /// I/O failure.
    Io(std::io::Error),
    /// Anything else, with a message.
    Other(String),
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Args(e) => write!(f, "{e}"),
            CmdError::Io(e) => write!(f, "{e}"),
            CmdError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Args(e)
    }
}
impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::Io(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
rsdc — discrete data-center right-sizing (Albers & Quedenfeld, SPAA 2018)

USAGE: rsdc <command> [options]

COMMANDS
  generate   synthesize a workload trace
             --kind diurnal|bursty|spiky|stationary  --slots N [--seed S]
             [--out FILE(.json|.csv)]
  solve      optimal offline schedule for a trace
             --trace FILE [--m M] [--beta B]
             [--algorithm binsearch|dp|backward] [--out FILE]
  online     run an online policy over a trace
             --trace FILE [--m M] [--beta B]
             [--algorithm lcp|randomized] [--seed S] [--out FILE]
  simulate   cluster simulation with energy/SLA metrics
             --trace FILE [--m M] [--beta B] [--policy lcp|opt|static]
  analyze    trace statistics and the optimal schedule's structure
             --trace FILE [--m M] [--beta B]
  engine     sharded multi-tenant streaming engine (JSONL or binary wire)
             --events FILE [--shards N] [--out FILE]
             [--wire binary|jsonl|auto] (request framing of FILE; auto —
             the default — sniffs the binary preamble's RSDC magic;
             binary responses are re-rendered as their identical JSONL)
         or  --trace FILE [--tenants K] [--policy P] [--shards N]
             [--m M] [--beta B] [--out FILE]
             P: lcp | halfstep[:seed] | flcp[:k[,seed]] | memoryless[:seed]
                | lookahead[:w] | followmin | hysteresis[:band]
                | hetero[:frontier|:greedy]
             hetero fleets: --fleet \"count:beta:energy:capacity[,...]\"
             [--delay-weight W] [--delay-eps E] [--overload P]
             control plane: [--vnodes V] (ring density)
             [--max-tenants N] (admission cap, 0 = unlimited)
             [--rate-limit R[:BURST]] (per-tenant token bucket, events
             per batch tick; throttled events get typed error lines)
             [--auto-rebalance LO:HI[:BETA]] (lazy auto-rebalancing: the
             shard count follows the LCP policy between LO and HI, moving
             only when accumulated imbalance cost beats the switching
             cost BETA; changes are incremental migrations)
             live rebalance: send {\"op\":\"rebalance\",\"shards\":N}
             (add \"mode\":\"incremental\" to move only the ring diff)
             energy accounting: [--power-model constant:W | linear:I:P |
             piecewise:W0,W1,...] (per-machine watts vs utilization)
             [--power-capacity C] (events one machine serves per tick)
             [--price P | constant:P | step:PERIOD:P1,P2,.. | trace:P1,..]
             [--price-trace FILE] (one price per tick; text, # comments)
             [--priced-autoscale] (the auto-rebalance policy prices its
             induced costs through the energy model and schedule; query
             live via {\"op\":\"energy\"})
             durability: [--data-dir DIR] [--checkpoint-every N]
             [--fsync-every N]  (a non-empty DIR is recovered: checkpoint +
             WAL replay rebuild the pre-crash engine, then the run resumes)
             observability: [--no-metrics] (disable the metrics registry)
             [--trace-capacity N] (control-plane trace ring size, default
             256) [--metrics-dump FILE] (write Prometheus text on exit and
             after checkpoints; query live via {\"op\":\"metrics\"} /
             {\"op\":\"trace\"})
  serve      multiplexed TCP server for the engine wire protocol: one
             reactor, one engine-backed session per connection
             [--listen ADDR] (default 127.0.0.1:7700; :0 picks a port —
             the bound address is announced on stdout as a JSONL line)
             [--max-conns N] (connection cap, default 64; over-cap
             connects get a typed sequence-0 error and are shed)
             [--write-buf BYTES] (per-connection outbound queue cap,
             default 262144; a connection whose backlog stays over the
             cap past --shed-timeout-ms is shed with a typed error)
             [--wire auto|jsonl|binary] (framing negotiation; auto sniffs
             the 6-byte RSDC preamble per connection)
             [--shards N] [--vnodes V] [--no-metrics] (per-connection
             engine topology) [--handshake-timeout-ms MS] (default 10000)
             [--shed-timeout-ms MS] (default 5000)
             [--max-accepts N] (serve N connections then exit; smoke
             tests and benchmarks use this — default serves forever)
  scenario   curated full-stack replay scenarios (the regression fleet)
             scenario list                 name + summary of every scenario
             scenario run <NAME> | --all   run one scenario, or the fleet
             [--quick] (120-tick CI horizon; default is the 960-tick
             nightly horizon) [--json] (emit the deterministic golden
             report instead of summary lines) [--out FILE]
             a run fails (non-zero exit) when any per-scenario bound —
             online/OPT ratio, zero lost events, required rejections /
             recoveries / rebalances / energy — is violated
  help       this text
";

/// Dispatch a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, CmdError> {
    // Only `scenario` has a positional grammar; everything else keeps the
    // historical "unexpected argument" behavior.
    if args.command.as_deref() != Some("scenario") {
        args.no_positionals()?;
    }
    match args.command.as_deref() {
        Some("generate") => cmd_generate(args),
        Some("solve") => cmd_solve(args),
        Some("online") => cmd_online(args),
        Some("simulate") => cmd_simulate(args),
        Some("analyze") => cmd_analyze(args),
        Some("engine") => cmd_engine(args),
        Some("serve") => cmd_serve(args),
        Some("scenario") => cmd_scenario(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CmdError::Other(format!(
            "unknown command {other:?}; try `rsdc help`"
        ))),
    }
}

fn load_trace(args: &Args) -> Result<Trace, CmdError> {
    let path: String = args.require("trace")?;
    let data = std::fs::read(&path)?;
    if io::is_binary(&data) {
        Ok(io::read_binary(&data).map_err(|e| CmdError::Other(format!("{path}: {e}")))?)
    } else if path.ends_with(".csv") {
        Ok(io::read_csv(&data[..], path.clone())?)
    } else {
        io::from_json(
            std::str::from_utf8(&data)
                .map_err(|e| CmdError::Other(format!("{path}: not UTF-8: {e}")))?,
        )
        .map_err(|e| CmdError::Other(format!("{path}: bad JSON trace: {e}")))
    }
}

fn write_output(args: &Args, default_desc: &str, body: String) -> Result<String, CmdError> {
    if let Some(path) = args.get_str("out") {
        std::fs::write(path, &body)?;
        Ok(format!("wrote {default_desc} to {path}\n"))
    } else {
        Ok(body)
    }
}

fn model_of(args: &Args) -> Result<(u32, CostModel, Trace), CmdError> {
    let trace = load_trace(args)?;
    let beta: f64 = args.get_or("beta", 6.0)?;
    if !(beta.is_finite() && beta > 0.0) {
        return Err(CmdError::Other(format!(
            "--beta must be positive, got {beta}"
        )));
    }
    let m: u32 = match args.get_str("m") {
        Some(_) => args.require("m")?,
        None => fleet_size(&trace, 0.8),
    };
    let model = CostModel {
        beta,
        ..Default::default()
    };
    Ok((m, model, trace))
}

fn cmd_generate(args: &Args) -> Result<String, CmdError> {
    let kind: String = args.require("kind")?;
    let slots: usize = args.require("slots")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let trace = match kind.as_str() {
        "diurnal" => Diurnal::default().generate(slots, seed),
        "bursty" => Bursty::default().generate(slots, seed),
        "spiky" => Spiky::default().generate(slots, seed),
        "stationary" => Stationary::default().generate(slots, seed),
        other => {
            return Err(CmdError::Other(format!(
                "unknown trace kind {other:?} (diurnal|bursty|spiky|stationary)"
            )))
        }
    };
    // Output format follows the --out extension: .csv, .rsdt (the compact
    // CRC-guarded binary format), else JSON.
    if let Some(path) = args.get_str("out") {
        if path.ends_with(".rsdt") {
            let mut buf = Vec::new();
            io::write_binary(&mut buf, &trace)?;
            std::fs::write(path, &buf)?;
            return Ok(format!("wrote {} slots of {kind} to {path}\n", trace.len()));
        }
    }
    let body = if args.get_str("out").map(|p| p.ends_with(".csv")) == Some(true) {
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &trace)?;
        String::from_utf8(buf).expect("csv is ascii")
    } else {
        io::to_json(&trace).map_err(|e| CmdError::Other(e.to_string()))?
    };
    write_output(args, &format!("{} slots of {kind}", trace.len()), body)
}

fn cmd_solve(args: &Args) -> Result<String, CmdError> {
    let (m, model, trace) = model_of(args)?;
    let inst = model.instance(m, &trace);
    let algorithm: String = args.get_or("algorithm", "binsearch".to_string())?;
    let sol = match algorithm.as_str() {
        "binsearch" => rsdc_offline::binsearch::solve(&inst),
        "dp" => rsdc_offline::dp::solve(&inst),
        "backward" => rsdc_offline::backward::solve(&inst),
        other => {
            return Err(CmdError::Other(format!(
                "unknown offline algorithm {other:?} (binsearch|dp|backward)"
            )))
        }
    };
    let body = serde_json::json!({
        "trace": trace.label,
        "m": m,
        "beta": model.beta,
        "algorithm": algorithm,
        "cost": sol.cost,
        "schedule": sol.schedule.0,
    });
    write_output(
        args,
        "offline schedule",
        serde_json::to_string_pretty(&body).expect("serializable") + "\n",
    )
}

fn cmd_online(args: &Args) -> Result<String, CmdError> {
    let (m, model, trace) = model_of(args)?;
    let inst = model.instance(m, &trace);
    let algorithm: String = args.get_or("algorithm", "lcp".to_string())?;
    let xs = match algorithm.as_str() {
        "lcp" => {
            let mut a = Lcp::new(m, model.beta);
            run_online(&mut a, &inst)
        }
        "randomized" => {
            let seed: u64 = args.get_or("seed", 0)?;
            let mut a =
                RandomizedOnline::new(HalfStep::new(m, model.beta, EvalMode::Interpolate), m, seed);
            run_online(&mut a, &inst)
        }
        other => {
            return Err(CmdError::Other(format!(
                "unknown online algorithm {other:?} (lcp|randomized)"
            )))
        }
    };
    let alg_cost = cost(&inst, &xs);
    let opt = rsdc_offline::dp::solve_cost_only(&inst);
    let body = serde_json::json!({
        "trace": trace.label,
        "m": m,
        "beta": model.beta,
        "algorithm": algorithm,
        "cost": alg_cost,
        "offline_optimum": opt,
        "ratio": if opt > 0.0 { alg_cost / opt } else { 1.0 },
        "schedule": xs.0,
    });
    write_output(
        args,
        "online schedule",
        serde_json::to_string_pretty(&body).expect("serializable") + "\n",
    )
}

fn cmd_simulate(args: &Args) -> Result<String, CmdError> {
    let (m, model, trace) = model_of(args)?;
    let cfg = SimConfig {
        m,
        cost_model: model,
        ..Default::default()
    };
    let policy: String = args.get_or("policy", "lcp".to_string())?;
    let report = match policy.as_str() {
        "lcp" => {
            let mut a = Lcp::new(m, model.beta);
            simulate_online(&cfg, &trace, &mut a)
        }
        "opt" => simulate_offline_optimum(&cfg, &trace),
        "static" => simulate_best_static(&cfg, &trace),
        other => {
            return Err(CmdError::Other(format!(
                "unknown policy {other:?} (lcp|opt|static)"
            )))
        }
    };
    let body = serde_json::json!({
        "trace": trace.label,
        "m": m,
        "beta": model.beta,
        "policy": report.policy,
        "model_cost": report.model_cost,
        "total_energy": report.metrics.total_energy(),
        "drop_rate": report.metrics.drop_rate(),
        "mean_committed": report.metrics.mean_committed(),
        "total_wakes": report.metrics.total_wakes(),
        "slots": report.metrics.slots(),
    });
    Ok(serde_json::to_string_pretty(&body).expect("serializable") + "\n")
}

fn cmd_analyze(args: &Args) -> Result<String, CmdError> {
    let (m, model, trace) = model_of(args)?;
    let stats = rsdc_workloads::stats::trace_stats(&trace);
    let inst = model.instance(m, &trace);
    let sol = rsdc_offline::binsearch::solve(&inst);
    let breakdown = rsdc_core::analysis::breakdown(&inst, &sol.schedule);
    let sched_stats = rsdc_core::analysis::stats(&sol.schedule);
    let (_, static_cost) = model.best_static_cost(m, &trace);
    let body = serde_json::json!({
        "trace": {
            "label": trace.label,
            "slots": stats.len,
            "mean_load": stats.mean,
            "peak_load": stats.max,
            "peak_to_mean": stats.peak_to_mean,
            "cv": stats.cv,
            "autocorr_lag1": stats.autocorr1,
            "burstiness": stats.burstiness,
        },
        "optimal_schedule": {
            "m": m,
            "beta": model.beta,
            "cost": sol.cost,
            "operating_cost": breakdown.operating,
            "switching_cost": breakdown.switching,
            "switching_share": breakdown.switching_share(),
            "power_ups": sched_stats.total_power_ups,
            "phases": sched_stats.phase_count,
            "peak_servers": sched_stats.peak,
            "mean_servers": sched_stats.mean,
        },
        "right_sizing_savings_pct":
            if static_cost > 0.0 { 100.0 * (1.0 - sol.cost / static_cost) } else { 0.0 },
    });
    Ok(serde_json::to_string_pretty(&body).expect("serializable") + "\n")
}

/// Run the streaming engine over a JSONL event file, or over a synthetic
/// multi-tenant fleet derived from a trace. With `--data-dir` the engine
/// journals every applied event to a write-ahead log and checkpoints
/// periodically; restarting over a non-empty directory recovers the exact
/// pre-crash engine (checkpoint + WAL replay) before processing new input.
fn cmd_engine(args: &Args) -> Result<String, CmdError> {
    use rsdc_engine::{wire, AdmissionConfig, Engine, EngineConfig, PolicySpec, TenantConfig};
    use rsdc_store::{Durability, FileStore, FileStoreConfig};
    use std::sync::Arc;

    let shards: usize = args.get_or("shards", 0)?;
    let vnodes: usize = args.get_or("vnodes", 0)?;
    let engine_cfg = {
        let mut cfg = if shards == 0 {
            EngineConfig::default()
        } else {
            EngineConfig::with_shards(shards)
        };
        if vnodes > 0 {
            cfg.vnodes = vnodes;
        }
        cfg.metrics = !args.has_flag("no-metrics");
        cfg.trace_capacity = args.get_or("trace-capacity", rsdc_engine::DEFAULT_TRACE_CAPACITY)?;
        cfg
    };
    let metrics_dump = args.get_str("metrics-dump").map(str::to_owned);
    let checkpoint_every: u64 = args.get_or("checkpoint-every", 0)?;
    let mut responses: Vec<String> = Vec::new();
    let mut session = match args.get_str("data-dir") {
        Some(dir) => {
            let sync_every: u64 = args.get_or("fsync-every", 32)?;
            let store: Arc<dyn Durability> = Arc::new(
                FileStore::open(dir, FileStoreConfig { sync_every })
                    .map_err(|e| CmdError::Other(e.to_string()))?,
            );
            let (session, recovered) = wire::Session::open_durable_cfg(engine_cfg, store)
                .map_err(|e| CmdError::Other(e.to_string()))?;
            if let Some(report) = recovered {
                responses.push(wire::recovered_line(&report));
            }
            session.with_auto_checkpoint(checkpoint_every)
        }
        None => {
            if checkpoint_every > 0 {
                return Err(CmdError::Other(
                    "--checkpoint-every requires --data-dir".into(),
                ));
            }
            wire::Session::new(Engine::new(engine_cfg))
        }
    };

    // Admission limits apply from the first record of this run; they are
    // process state, not persisted, so every invocation states its own.
    let mut limits = AdmissionConfig {
        max_tenants: args.get_or("max-tenants", 0)?,
        ..AdmissionConfig::default()
    };
    if let Some(spec) = args.get_str("rate-limit") {
        let parse = |what: &str, s: &str| -> Result<f64, CmdError> {
            s.parse()
                .map_err(|e| CmdError::Other(format!("bad --rate-limit {what} {s:?}: {e}")))
        };
        match spec.split_once(':') {
            Some((rate, burst)) => {
                limits.rate = parse("rate", rate)?;
                limits.burst = parse("burst", burst)?;
            }
            None => limits.rate = parse("rate", spec)?,
        }
    }
    if limits != AdmissionConfig::default() {
        session
            .engine()
            .set_limits(limits)
            .map_err(|e| CmdError::Other(e.to_string()))?;
    }

    // Energy accounting: --power-model installs the meter; capacity and
    // price schedule refine it. Process state like the other control-plane
    // knobs — every invocation states its own.
    if args.get_str("power-model").is_none()
        && (args.options.contains_key("power-capacity")
            || args.get_str("price").is_some()
            || args.get_str("price-trace").is_some()
            || args.has_flag("priced-autoscale"))
    {
        return Err(CmdError::Other(
            "--power-capacity/--price/--price-trace/--priced-autoscale require --power-model"
                .into(),
        ));
    }
    if let Some(spec) = args.get_str("power-model") {
        use rsdc_engine::{PowerConfig, PowerSpec, PriceSchedule};
        let mut cfg = PowerConfig::new(
            PowerSpec::parse(spec)
                .map_err(|e| CmdError::Other(format!("bad --power-model: {e}")))?,
        );
        cfg.capacity = args.get_or("power-capacity", cfg.capacity)?;
        if args.get_str("price").is_some() && args.get_str("price-trace").is_some() {
            return Err(CmdError::Other(
                "--price and --price-trace are mutually exclusive".into(),
            ));
        }
        if let Some(p) = args.get_str("price") {
            cfg.price = PriceSchedule::parse(p)
                .map_err(|e| CmdError::Other(format!("bad --price: {e}")))?;
        }
        if let Some(path) = args.get_str("price-trace") {
            let data = std::fs::read_to_string(path)?;
            let mut prices = Vec::new();
            for (n, line) in data.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                for tok in line.split([',', ' ', '\t']).filter(|t| !t.is_empty()) {
                    prices.push(tok.parse::<f64>().map_err(|e| {
                        CmdError::Other(format!(
                            "bad --price-trace {path} line {}: {tok:?}: {e}",
                            n + 1
                        ))
                    })?);
                }
            }
            cfg.price = PriceSchedule::Trace { prices };
        }
        session
            .engine()
            .set_power(Some(cfg))
            .map_err(|e| CmdError::Other(e.to_string()))?;
    }
    if args.has_flag("priced-autoscale") && args.get_str("auto-rebalance").is_none() {
        return Err(CmdError::Other(
            "--priced-autoscale requires --auto-rebalance".into(),
        ));
    }

    // Lazy auto-rebalancing: like limits, policy knobs are process state
    // stated per invocation. `lo:hi` bounds the shard count; the optional
    // `beta` is the induced switching cost per shard powered up.
    if let Some(spec) = args.get_str("auto-rebalance") {
        let parse = |what: &str, s: &str| -> Result<usize, CmdError> {
            s.parse()
                .map_err(|e| CmdError::Other(format!("bad --auto-rebalance {what} {s:?}: {e}")))
        };
        let parts: Vec<&str> = spec.split(':').collect();
        let mut cfg = match parts.as_slice() {
            [lo, hi] | [lo, hi, _] => {
                rsdc_engine::TopologyConfig::new(parse("lo", lo)?, parse("hi", hi)?)
            }
            _ => {
                return Err(CmdError::Other(format!(
                    "bad --auto-rebalance {spec:?}: expected lo:hi[:beta]"
                )))
            }
        };
        if let [_, _, beta] = parts.as_slice() {
            cfg.switch_cost = beta
                .parse()
                .map_err(|e| CmdError::Other(format!("bad --auto-rebalance beta {beta:?}: {e}")))?;
        }
        // Priced mode: the policy sees induced costs in modeled watts and
        // priced energy — the same physics the meter bills with.
        if args.has_flag("priced-autoscale") {
            cfg.pricing = session.engine().power_config();
            debug_assert!(cfg.pricing.is_some(), "guarded by the flag checks above");
        }
        session
            .engine()
            .set_autoscale(Some(cfg))
            .map_err(|e| CmdError::Other(e.to_string()))?;
    }

    let body_lines = if let Some(path) = args.get_str("events") {
        let data = std::fs::read(path)?;
        // Framing negotiation: `auto` sniffs the binary preamble's magic
        // byte (no JSONL record can start with 'R'); `binary`/`jsonl`
        // force one framing — forcing `binary` on a text file yields the
        // protocol's own bad-preamble error rather than a parse spray.
        let wire_mode: String = args.get_or("wire", "auto".to_string())?;
        let binary = match wire_mode.as_str() {
            "jsonl" => false,
            "binary" => true,
            "auto" => data.first() == Some(&rsdc_engine::binwire::MAGIC[0]),
            other => {
                return Err(CmdError::Other(format!(
                    "bad --wire {other:?}: expected binary, jsonl or auto"
                )))
            }
        };
        if binary {
            let mut bin = rsdc_engine::binwire::BinSession::new(session);
            let mut reply_bytes = Vec::new();
            bin.feed(&data, &mut reply_bytes);
            bin.finish(&mut reply_bytes);
            session = bin.into_session();
            // Re-render the response stream as JSONL so --out, the
            // checkpoint detector and the exit dump stay framing-agnostic
            // (the two renderings are byte-identical by construction).
            rsdc_engine::binwire::decode_response(&reply_bytes).map_err(CmdError::Other)?
        } else {
            let text = std::str::from_utf8(&data)
                .map_err(|e| CmdError::Other(format!("{path}: not UTF-8: {e}")))?;
            session.handle_lines(text.lines())
        }
    } else {
        // Fleet mode: K tenants, all fed the trace's loads in batched slots.
        let (m, model, trace) = model_of(args)?;
        let tenants: usize = args.get_or("tenants", 4)?;
        if tenants == 0 {
            return Err(CmdError::Other("--tenants must be >= 1".into()));
        }
        let policy_arg: String = args.get_or("policy", "lcp".to_string())?;
        let hetero_fleet = if let Some(algo) =
            rsdc_engine::HeteroAlgo::parse_policy_prefix(&policy_arg)
        {
            use rsdc_engine::FleetSpec;
            let algo = algo.map_err(CmdError::Other)?;
            let types_arg = args.get_str("fleet").ok_or_else(|| {
                CmdError::Other(
                    "--policy hetero requires --fleet \"count:beta:energy:capacity[,...]\"".into(),
                )
            })?;
            let mut fleet =
                FleetSpec::new(FleetSpec::parse_types(types_arg).map_err(CmdError::Other)?);
            fleet.delay_weight = args.get_or("delay-weight", fleet.delay_weight)?;
            fleet.delay_eps = args.get_or("delay-eps", fleet.delay_eps)?;
            fleet.overload = args.get_or("overload", fleet.overload)?;
            fleet
                .validate()
                .map_err(|e| CmdError::Other(e.to_string()))?;
            Some((fleet, algo))
        } else {
            None
        };
        let mut lines: Vec<String> = Vec::new();
        for i in 0..tenants {
            let mut cfg = if let Some((fleet, algo)) = &hetero_fleet {
                TenantConfig::hetero(format!("tenant-{i}"), fleet.clone(), *algo)
            } else {
                // Per-tenant seeds so randomized tenants decorrelate.
                let spec = PolicySpec::parse_short(&policy_arg).map_err(CmdError::Other)?;
                let spec = match spec {
                    PolicySpec::HalfStepRounded { seed } => PolicySpec::HalfStepRounded {
                        seed: seed.wrapping_add(i as u64),
                    },
                    PolicySpec::FlcpRounded { k, seed } => PolicySpec::FlcpRounded {
                        k,
                        seed: seed.wrapping_add(i as u64),
                    },
                    PolicySpec::MemorylessRounded { seed } => PolicySpec::MemorylessRounded {
                        seed: seed.wrapping_add(i as u64),
                    },
                    other => other,
                };
                TenantConfig::new(format!("tenant-{i}"), m, model.beta, spec)
            };
            cfg.track_opt = true;
            lines.push(wire::admit_line(&cfg));
        }
        let mut out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        // Slot-major order: every tenant sees slot t before any sees t+1,
        // and each slot is fed as its **own** session call so one slot is
        // exactly one engine batch — which makes the control plane's
        // logical clock (rate limits, the auto-rebalance policy) read in
        // slots, as documented. Line numbers in any per-event error are
        // slot-relative; fleet mode synthesizes its own lines, so they
        // locate the tenant within the slot.
        for &load in &trace.loads {
            let slot: Vec<String> = (0..tenants)
                .map(|i| wire::step_load_line(&format!("tenant-{i}"), load))
                .collect();
            out.extend(session.handle_lines(slot.iter().map(|s| s.as_str())));
        }
        let mut tail: Vec<String> = (0..tenants)
            .map(|i| format!("{{\"op\":\"finish\",\"id\":\"tenant-{i}\"}}"))
            .collect();
        tail.push("{\"op\":\"report\"}".to_string());
        tail.push("{\"op\":\"stats\"}".to_string());
        out.extend(session.handle_lines(tail.iter().map(|s| s.as_str())));
        out
    };
    // Prometheus text dump: refreshed after any checkpoint taken during the
    // run, and once more on exit so the file always reflects final totals.
    let dump = |session: &wire::Session| -> Result<(), CmdError> {
        if let Some(path) = &metrics_dump {
            let text = session.engine().obs().registry().render_prometheus();
            std::fs::write(path, text)
                .map_err(|e| CmdError::Other(format!("writing --metrics-dump {path}: {e}")))?;
        }
        Ok(())
    };
    if body_lines
        .iter()
        .any(|l| l.contains("\"op\":\"checkpointed\""))
    {
        dump(&session)?;
    }
    responses.extend(body_lines);

    // A durable run ends on a checkpoint, so the next start over the same
    // data directory replays nothing.
    if session.engine().store().is_durable() {
        responses.extend(session.handle_lines(["{\"op\":\"checkpoint\"}"]));
    }
    dump(&session)?;

    let body = responses.join("\n") + "\n";
    write_output(args, "engine responses", body)
}

/// Serve the engine wire protocol over TCP: one reactor multiplexing up
/// to `--max-conns` connections, each backed by its own engine. Blocks
/// until the reactor drains (`--max-accepts`) or the process is killed,
/// so the bound address is announced eagerly on stdout rather than in
/// the dispatch result.
fn cmd_serve(args: &Args) -> Result<String, CmdError> {
    use rsdc_engine::{EngineConfig, ServeConfig, Server, WireMode};
    use std::io::Write as _;
    use std::time::Duration;

    let shards: usize = args.get_or("shards", 0)?;
    let vnodes: usize = args.get_or("vnodes", 0)?;
    let mut engine = if shards == 0 {
        EngineConfig::default()
    } else {
        EngineConfig::with_shards(shards)
    };
    if vnodes > 0 {
        engine.vnodes = vnodes;
    }
    engine.metrics = !args.has_flag("no-metrics");
    engine.trace_capacity = args.get_or("trace-capacity", rsdc_engine::DEFAULT_TRACE_CAPACITY)?;

    let wire_spec: String = args.get_or("wire", "auto".to_string())?;
    let wire = WireMode::parse(&wire_spec).map_err(CmdError::Other)?;
    let mut cfg = ServeConfig {
        engine,
        wire,
        ..ServeConfig::default()
    };
    cfg.max_conns = args.get_or("max-conns", cfg.max_conns)?;
    if cfg.max_conns == 0 {
        return Err(CmdError::Other("--max-conns must be at least 1".into()));
    }
    cfg.write_buf = args.get_or("write-buf", cfg.write_buf)?;
    let handshake_ms: u64 = args.get_or(
        "handshake-timeout-ms",
        cfg.handshake_timeout.as_millis() as u64,
    )?;
    cfg.handshake_timeout = Duration::from_millis(handshake_ms);
    let shed_ms: u64 = args.get_or("shed-timeout-ms", cfg.shed_timeout.as_millis() as u64)?;
    cfg.shed_timeout = Duration::from_millis(shed_ms);
    if args.get_str("max-accepts").is_some() {
        cfg.max_accepts = Some(args.require("max-accepts")?);
    }

    let max_conns = cfg.max_conns;
    let listen: String = args.get_or("listen", "127.0.0.1:7700".to_string())?;
    let mut server =
        Server::bind(cfg, &listen).map_err(|e| CmdError::Other(format!("bind {listen}: {e}")))?;
    let addr = server.local_addr();

    // Announce readiness before blocking in the reactor: callers (smoke
    // tests, the bench harness) parse this line to learn the real port
    // when `--listen` used :0.
    println!(
        "{{\"op\":\"serving\",\"addr\":\"{addr}\",\"wire\":\"{wire_spec}\",\"max_conns\":{max_conns}}}"
    );
    std::io::stdout().flush()?;

    let summary = server.run().map_err(CmdError::Io)?;
    Ok(format!(
        "{{\"op\":\"served\",\"accepted\":{},\"closed\":{},\"shed\":{},\"bytes_in\":{},\"bytes_out\":{}}}\n",
        summary.accepted, summary.closed, summary.shed, summary.bytes_in, summary.bytes_out
    ))
}

const SCENARIO_USAGE: &str =
    "usage: rsdc scenario list | run <NAME>|--all [--quick] [--json] [--out FILE]";

fn cmd_scenario(args: &Args) -> Result<String, CmdError> {
    use rsdc_scenarios::zoo;
    let quick = args.has_flag("quick");
    if let Some(extra) = args.positionals.get(2) {
        return Err(CmdError::Args(ArgError::ExtraPositional(extra.clone())));
    }
    match args.positionals.first().map(|s| s.as_str()) {
        Some("list") => {
            if args.positionals.len() > 1 {
                return Err(CmdError::Args(ArgError::ExtraPositional(
                    args.positionals[1].clone(),
                )));
            }
            let mut out = String::new();
            for s in zoo::zoo(true) {
                out.push_str(&format!("{:22}  {}\n", s.spec.name, s.spec.summary));
            }
            Ok(out)
        }
        Some("run") => {
            let fleet = match (args.positionals.get(1), args.has_flag("all")) {
                (Some(name), false) => match zoo::find(name, quick) {
                    Some(s) => vec![s],
                    None => {
                        return Err(CmdError::Other(format!(
                            "unknown scenario {name:?}; try `rsdc scenario list`"
                        )))
                    }
                },
                (None, true) => zoo::zoo(quick),
                (Some(name), true) => {
                    return Err(CmdError::Other(format!(
                        "give either a scenario name ({name:?}) or --all, not both"
                    )))
                }
                (None, false) => return Err(CmdError::Other(SCENARIO_USAGE.into())),
            };
            let mut lines = String::new();
            let mut reports = Vec::new();
            let mut violations = Vec::new();
            for s in fleet {
                let report = rsdc_scenarios::run(&s.spec)
                    .map_err(|e| CmdError::Other(format!("{}: {e}", s.spec.name)))?;
                let errs = s.bounds.check(&report);
                let status = if errs.is_empty() { "ok" } else { "FAIL" };
                lines.push_str(&format!("[{status}] {}\n", report.summary_line()));
                for e in errs {
                    violations.push(format!("{}: {e}", s.spec.name));
                }
                reports.push(report);
            }
            let body = if args.has_flag("json") {
                // One golden report bare; a fleet as a JSON array.
                if reports.len() == 1 {
                    reports[0].golden_json()
                } else {
                    let docs: Vec<serde_json::Value> = reports
                        .iter()
                        .map(|r| serde_json::from_str(&r.golden_json()).expect("golden parses"))
                        .collect();
                    serde_json::to_string_pretty(&serde_json::Value::Array(docs))
                        .expect("fleet renders")
                        + "\n"
                }
            } else {
                lines
            };
            if !violations.is_empty() {
                return Err(CmdError::Other(format!(
                    "bounds violated:\n  {}",
                    violations.join("\n  ")
                )));
            }
            write_output(args, "scenario report", body)
        }
        Some(other) => Err(CmdError::Other(format!(
            "unknown scenario action {other:?}; {SCENARIO_USAGE}"
        ))),
        None => Err(CmdError::Other(SCENARIO_USAGE.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("rsdc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_is_returned_by_default() {
        let out = dispatch(&args(&[])).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_then_solve_then_online_then_simulate() {
        let trace_path = tmp("pipe.json");
        let out = dispatch(&args(&[
            "generate",
            "--kind",
            "diurnal",
            "--slots",
            "96",
            "--seed",
            "3",
            "--out",
            &trace_path,
        ]))
        .unwrap();
        assert!(out.contains("96 slots"));

        let solved = dispatch(&args(&["solve", "--trace", &trace_path, "--beta", "4.0"])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&solved).unwrap();
        assert!(v["cost"].as_f64().unwrap() > 0.0);
        assert_eq!(v["schedule"].as_array().unwrap().len(), 96);

        let online = dispatch(&args(&["online", "--trace", &trace_path])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&online).unwrap();
        let ratio = v["ratio"].as_f64().unwrap();
        assert!((1.0..=3.0 + 1e-9).contains(&ratio), "ratio {ratio}");

        let sim = dispatch(&args(&[
            "simulate",
            "--trace",
            &trace_path,
            "--policy",
            "opt",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&sim).unwrap();
        assert!(v["total_energy"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn generate_csv_roundtrip() {
        let p = tmp("t.csv");
        dispatch(&args(&[
            "generate", "--kind", "bursty", "--slots", "50", "--out", &p,
        ]))
        .unwrap();
        let solved = dispatch(&args(&["solve", "--trace", &p, "--m", "20"])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&solved).unwrap();
        assert_eq!(v["m"], 20);
    }

    #[test]
    fn solver_choices_agree() {
        let p = tmp("agree.json");
        dispatch(&args(&[
            "generate", "--kind", "spiky", "--slots", "60", "--out", &p,
        ]))
        .unwrap();
        let mut costs = Vec::new();
        for alg in ["binsearch", "dp", "backward"] {
            let out = dispatch(&args(&["solve", "--trace", &p, "--algorithm", alg])).unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            costs.push(v["cost"].as_f64().unwrap());
        }
        assert!((costs[0] - costs[1]).abs() < 1e-6 * (1.0 + costs[1]));
        assert!((costs[1] - costs[2]).abs() < 1e-6 * (1.0 + costs[1]));
    }

    #[test]
    fn analyze_reports_structure() {
        let p = tmp("analyze.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "96", "--out", &p,
        ]))
        .unwrap();
        let out = dispatch(&args(&["analyze", "--trace", &p])).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["trace"]["slots"], 96);
        assert!(v["trace"]["peak_to_mean"].as_f64().unwrap() > 1.0);
        assert!(v["optimal_schedule"]["cost"].as_f64().unwrap() > 0.0);
        let op = v["optimal_schedule"]["operating_cost"].as_f64().unwrap();
        let sw = v["optimal_schedule"]["switching_cost"].as_f64().unwrap();
        let total = v["optimal_schedule"]["cost"].as_f64().unwrap();
        assert!((op + sw - total).abs() < 1e-9);
    }

    #[test]
    fn engine_fleet_mode_reports_every_tenant() {
        let p = tmp("engine.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "48", "--seed", "4", "--out", &p,
        ]))
        .unwrap();
        let out = dispatch(&args(&[
            "engine",
            "--trace",
            &p,
            "--tenants",
            "3",
            "--policy",
            "lcp",
            "--shards",
            "2",
        ]))
        .unwrap();
        let reports: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["op"] == "report")
            .collect();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r["report"]["committed"], 48);
            let ratio = r["report"]["ratio"].as_f64().unwrap();
            assert!((1.0 - 1e-9..=3.0 + 1e-9).contains(&ratio), "ratio {ratio}");
        }
        let stats: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["op"] == "stats")
            .collect();
        assert_eq!(stats.len(), 1);
        let shards = stats[0]["shards"].as_array().unwrap();
        assert_eq!(shards.len(), 2);
        let events: u64 = shards.iter().map(|s| s["events"].as_u64().unwrap()).sum();
        assert_eq!(events, 3 * 48);
    }

    #[test]
    fn engine_hetero_fleet_mode_end_to_end() {
        let p = tmp("engine-hetero.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "36", "--seed", "7", "--out", &p,
        ]))
        .unwrap();
        // Hetero without a fleet spec is a usage error.
        assert!(dispatch(&args(&["engine", "--trace", &p, "--policy", "hetero"])).is_err());
        let dir = tmp(&format!("engine-hetero-data-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = |data_dir: Option<&str>| {
            let mut tokens = vec![
                "engine",
                "--trace",
                &p,
                "--tenants",
                "2",
                "--policy",
                "hetero:frontier",
                "--fleet",
                "3:1:1:1,2:2.5:1.4:2",
                "--shards",
                "2",
            ];
            if let Some(d) = data_dir {
                tokens.extend(["--data-dir", d]);
            }
            dispatch(&args(&tokens)).unwrap()
        };
        let out = run(None);
        let reports: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["op"] == "report")
            .collect();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r["report"]["committed"], 36);
            assert!(r["report"]["last_config"].as_array().is_some());
            assert!(r["report"]["policy"].as_str().unwrap().contains("frontier"));
            let ratio = r["report"]["ratio"].as_f64().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "ratio {ratio}");
        }
        // A durable hetero run over the same trace reports identically and
        // leaves a recoverable data dir behind.
        let durable = run(Some(&dir));
        let durable_reports: Vec<String> = durable
            .lines()
            .filter(|l| l.contains("\"op\":\"report\""))
            .map(|s| s.to_string())
            .collect();
        let want: Vec<String> = out
            .lines()
            .filter(|l| l.contains("\"op\":\"report\""))
            .map(|s| s.to_string())
            .collect();
        assert_eq!(durable_reports, want);
        let resumed = dispatch(&args(&[
            "engine",
            "--events",
            "/dev/null",
            "--data-dir",
            &dir,
        ]))
        .unwrap();
        let first: serde_json::Value =
            serde_json::from_str(resumed.lines().next().unwrap()).unwrap();
        assert_eq!(first["op"], "recovered");
        assert_eq!(first["report"]["tenants_restored"], 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_events_mode_round_trips_wire_records() {
        let p = tmp("events.jsonl");
        let events = "\
{\"op\":\"admit\",\"id\":\"a\",\"m\":6,\"beta\":4.0,\"policy\":\"flcp:2,9\"}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":2.0}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":4.5}\n\
{\"op\":\"step\",\"id\":\"a\",\"cost\":{\"Abs\":{\"slope\":1.0,\"center\":3.0}}}\n\
{\"op\":\"report\",\"id\":\"a\"}\n";
        std::fs::write(&p, events).unwrap();
        let out = dispatch(&args(&["engine", "--events", &p, "--shards", "1"])).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        let report: serde_json::Value = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(report["report"]["events"], 3);
        assert_eq!(report["report"]["committed"], 3);
    }

    #[test]
    fn engine_data_dir_resumes_across_invocations() {
        let dir = tmp(&format!("engine-data-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let admit = "{\"op\":\"admit\",\"id\":\"a\",\"m\":6,\"beta\":4.0,\"policy\":\"flcp:2,9\"}";
        let steps: Vec<String> = [2.0, 4.5, 3.0, 1.0, 5.0, 2.5]
            .iter()
            .map(|l| format!("{{\"op\":\"step\",\"id\":\"a\",\"load\":{l}}}"))
            .collect();
        let report = "{\"op\":\"report\",\"id\":\"a\"}";

        // Uninterrupted reference (no durability).
        let all = tmp("engine-all.jsonl");
        std::fs::write(&all, format!("{admit}\n{}\n{report}\n", steps.join("\n"))).unwrap();
        let out = dispatch(&args(&["engine", "--events", &all, "--shards", "1"])).unwrap();
        let want = out.lines().last().unwrap().to_string();

        // Same stream split across two engine processes sharing a data dir.
        let part1 = tmp("engine-part1.jsonl");
        std::fs::write(&part1, format!("{admit}\n{}\n", steps[..3].join("\n"))).unwrap();
        let part2 = tmp("engine-part2.jsonl");
        std::fs::write(&part2, format!("{}\n{report}\n", steps[3..].join("\n"))).unwrap();
        let out1 = dispatch(&args(&[
            "engine",
            "--events",
            &part1,
            "--shards",
            "1",
            "--data-dir",
            &dir,
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        assert!(out1.contains("checkpointed"), "{out1}");
        assert!(!out1.contains("\"recovered\""), "first run starts cold");
        let out2 = dispatch(&args(&[
            "engine",
            "--events",
            &part2,
            "--shards",
            "2",
            "--data-dir",
            &dir,
        ]))
        .unwrap();
        let first: serde_json::Value = serde_json::from_str(out2.lines().next().unwrap()).unwrap();
        assert_eq!(first["op"], "recovered");
        assert_eq!(first["report"]["tenants_restored"], 1);
        let got = out2
            .lines()
            .find(|l| l.contains("\"op\":\"report\""))
            .unwrap()
            .to_string();
        assert_eq!(got, want, "resumed run must report byte-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_control_plane_flags_enforce_limits() {
        let p = tmp("limits.jsonl");
        let events = "\
{\"op\":\"admit\",\"id\":\"a\",\"m\":6,\"beta\":4.0,\"policy\":\"lcp\"}\n\
{\"op\":\"admit\",\"id\":\"b\",\"m\":6,\"beta\":4.0,\"policy\":\"lcp\"}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":2.0}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":3.0}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":4.0}\n\
{\"op\":\"rebalance\",\"shards\":2}\n\
{\"op\":\"report\",\"id\":\"a\"}\n";
        std::fs::write(&p, events).unwrap();
        let out = dispatch(&args(&[
            "engine",
            "--events",
            &p,
            "--shards",
            "1",
            "--vnodes",
            "16",
            "--max-tenants",
            "1",
            "--rate-limit",
            "1:2",
        ]))
        .unwrap();
        let parsed: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // Second admit rejected by the cap, with its line number.
        let rejected = parsed
            .iter()
            .find(|v| v["op"] == "error" && v["line"] == 2)
            .expect("cap rejection");
        assert!(rejected["message"].as_str().unwrap().contains("rejected"));
        // Third step throttled by the 1:2 token bucket.
        let throttled = parsed
            .iter()
            .find(|v| v["op"] == "error" && v["line"] == 5)
            .expect("throttled step");
        assert!(throttled["message"].as_str().unwrap().contains("throttled"));
        // The live rebalance happened and the surviving stream committed.
        let rebalanced = parsed
            .iter()
            .find(|v| v["op"] == "rebalanced")
            .expect("rebalanced");
        assert_eq!(rebalanced["shards"], 2);
        assert_eq!(rebalanced["vnodes"], 16, "--vnodes sets the ring density");
        let report = parsed.iter().find(|v| v["op"] == "report").unwrap();
        assert_eq!(report["report"]["events"], 2);
        // A malformed rate limit is a usage error.
        assert!(dispatch(&args(&["engine", "--events", &p, "--rate-limit", "fast",])).is_err());
    }

    #[test]
    fn engine_observability_flags() {
        let p = tmp("obsflags.jsonl");
        let events = "\
{\"op\":\"admit\",\"id\":\"a\",\"m\":6,\"beta\":4.0,\"policy\":\"lcp\"}\n\
{\"op\":\"step\",\"id\":\"a\",\"load\":2.0}\n\
{\"op\":\"metrics\"}\n\
{\"op\":\"trace\"}\n";
        std::fs::write(&p, events).unwrap();
        let dump = tmp("obsflags.prom");
        let out = dispatch(&args(&[
            "engine",
            "--events",
            &p,
            "--trace-capacity",
            "8",
            "--metrics-dump",
            &dump,
        ]))
        .unwrap();
        let parsed: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let metrics = parsed.iter().find(|v| v["op"] == "metrics").unwrap();
        assert_eq!(metrics["enabled"], true);
        let trace = parsed.iter().find(|v| v["op"] == "trace").unwrap();
        assert_eq!(trace["capacity"], 8, "--trace-capacity sizes the ring");
        let prom = std::fs::read_to_string(&dump).unwrap();
        assert!(
            prom.contains("engine_events_ingested 1"),
            "Prometheus dump records the ingested event: {prom}"
        );
        // --no-metrics empties the registry but keeps the ops answering.
        let out = dispatch(&args(&["engine", "--events", &p, "--no-metrics"])).unwrap();
        let metrics = out
            .lines()
            .map(|l| serde_json::from_str::<serde_json::Value>(l).unwrap())
            .find(|v| v["op"] == "metrics")
            .unwrap();
        assert_eq!(metrics["enabled"], false);
        assert_eq!(metrics["metrics"].as_array().unwrap().len(), 0);
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn engine_auto_rebalance_flag_scales_the_fleet() {
        let p = tmp("autoreb.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "40", "--seed", "11", "--out", &p,
        ]))
        .unwrap();
        // 24 tenants in fleet mode = 24 events per slot tick: under
        // f(s) = 24/s + s with beta 4, the LCP plan leaves 1 shard fast.
        let out = dispatch(&args(&[
            "engine",
            "--trace",
            &p,
            "--tenants",
            "24",
            "--shards",
            "1",
            "--auto-rebalance",
            "1:4:4",
        ]))
        .unwrap();
        let parsed: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let auto = parsed
            .iter()
            .find(|v| v["op"] == "rebalanced")
            .expect("an auto-triggered migration");
        assert_eq!(auto["auto"], true);
        assert_eq!(auto["mode"], "incremental");
        assert!(auto["shards"].as_u64().unwrap() > 1);
        // The autoscale state is visible in the closing stats line.
        let stats = parsed.iter().find(|v| v["op"] == "stats").unwrap();
        assert_eq!(stats["autoscale"]["min"], 1);
        assert_eq!(stats["autoscale"]["max"], 4);
        assert!(stats["autoscale"]["migrations"].as_u64().unwrap() >= 1);
        assert!(stats["skew"]["tenants"].as_f64().unwrap() >= 1.0);
        // All 24 tenants still report.
        let reports = parsed.iter().filter(|v| v["op"] == "report").count();
        assert_eq!(reports, 24);
        // Malformed specs are usage errors.
        for bad in ["2", "a:b", "1:2:fast", "1:2:3:4"] {
            assert!(
                dispatch(&args(&["engine", "--trace", &p, "--auto-rebalance", bad])).is_err(),
                "{bad} should be rejected"
            );
        }
        // An inverted range is refused by policy validation.
        assert!(dispatch(&args(&["engine", "--trace", &p, "--auto-rebalance", "4:1"])).is_err());
    }

    #[test]
    fn engine_power_flags_install_the_meter() {
        let p = tmp("power.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "20", "--seed", "3", "--out", &p,
        ]))
        .unwrap();
        let trace = tmp("prices.txt");
        std::fs::write(&trace, "# cheap, then expensive\n1.0 1.0\n5.0, 5.0\n").unwrap();
        let out = dispatch(&args(&[
            "engine",
            "--trace",
            &p,
            "--tenants",
            "6",
            "--shards",
            "2",
            "--power-model",
            "linear:100:250",
            "--power-capacity",
            "4.0",
            "--price-trace",
            &trace,
            "--auto-rebalance",
            "1:4:4",
            "--priced-autoscale",
        ]))
        .unwrap();
        let parsed: Vec<serde_json::Value> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // The closing stats line carries a live meter and a priced policy.
        let stats = parsed.iter().find(|v| v["op"] == "stats").unwrap();
        let energy = &stats["energy"];
        assert_eq!(energy["model"], "linear:100:250");
        assert_eq!(energy["capacity"], 4.0);
        assert_eq!(energy["price"], "trace:1,1,5,5");
        assert!(energy["ticks"].as_u64().unwrap() >= 20);
        assert!(energy["joules"].as_f64().unwrap() > 0.0);
        assert!(energy["cost"].as_f64().unwrap() > 0.0);
        assert_eq!(stats["autoscale"]["priced"], true);
        assert_eq!(stats["autoscale"]["price_now"], 5.0, "past the trace end");
        // Reports carry attributed energy.
        let report = parsed.iter().find(|v| v["op"] == "report").unwrap();
        assert!(report["report"]["energy"]["joules"].as_f64().is_some());
        // Knobs without the model, bad specs, and conflicting schedules
        // are usage errors.
        assert!(dispatch(&args(&["engine", "--trace", &p, "--price", "2.0"])).is_err());
        assert!(dispatch(&args(&["engine", "--trace", &p, "--priced-autoscale"])).is_err());
        assert!(dispatch(&args(&["engine", "--trace", &p, "--power-model", "warp:1"])).is_err());
        assert!(dispatch(&args(&[
            "engine",
            "--trace",
            &p,
            "--power-model",
            "linear:100:250",
            "--price",
            "1.0",
            "--price-trace",
            &trace,
        ]))
        .is_err());
        assert!(
            dispatch(&args(&[
                "engine",
                "--trace",
                &p,
                "--power-model",
                "linear:100:250",
                "--priced-autoscale",
            ]))
            .is_err(),
            "priced autoscale without --auto-rebalance is refused"
        );
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(dispatch(&args(&["solve"])).is_err()); // missing --trace
        assert!(dispatch(&args(&["generate", "--kind", "nope", "--slots", "5"])).is_err());
        let p = tmp("beta.json");
        dispatch(&args(&[
            "generate", "--kind", "diurnal", "--slots", "5", "--out", &p,
        ]))
        .unwrap();
        assert!(dispatch(&args(&["solve", "--trace", &p, "--beta", "-1"])).is_err());
    }

    #[test]
    fn legacy_commands_still_reject_positionals() {
        let cases: &[&[&str]] = &[
            &["solve", "extra", "--trace", "t.json"],
            &["generate", "bogus", "--kind", "diurnal", "--slots", "5"],
            &["engine", "surprise"],
        ];
        for case in cases {
            match dispatch(&args(case)) {
                Err(CmdError::Args(ArgError::ExtraPositional(_))) => {}
                other => panic!("{case:?}: expected ExtraPositional, got {other:?}"),
            }
        }
    }

    #[test]
    fn scenario_usage_errors() {
        // (argv, substring the error must mention)
        let cases: &[(&[&str], &str)] = &[
            (&["scenario"], "usage: rsdc scenario"),
            (&["scenario", "run"], "usage: rsdc scenario"),
            (&["scenario", "frobnicate"], "unknown scenario action"),
            (&["scenario", "run", "no-such-scenario"], "unknown scenario"),
            (
                &["scenario", "run", "diurnal-baseline", "--all"],
                "not both",
            ),
        ];
        for (case, needle) in cases {
            let err = dispatch(&args(case)).expect_err(&format!("{case:?} should fail"));
            let msg = err.to_string();
            assert!(msg.contains(needle), "{case:?}: {msg:?} missing {needle:?}");
        }
        // Trailing garbage after the grammar is an arg error, not a run.
        for case in [
            &["scenario", "run", "diurnal-baseline", "junk"][..],
            &["scenario", "list", "junk"][..],
        ] {
            match dispatch(&args(case)) {
                Err(CmdError::Args(ArgError::ExtraPositional(p))) => assert_eq!(p, "junk"),
                other => panic!("{case:?}: expected ExtraPositional, got {other:?}"),
            }
        }
    }

    #[test]
    fn scenario_list_names_the_fleet() {
        let out = dispatch(&args(&["scenario", "list"])).unwrap();
        for name in ["diurnal-baseline", "crash-recovery", "cold-start-flood"] {
            assert!(out.contains(name), "list output missing {name}: {out}");
        }
    }

    #[test]
    fn scenario_run_quick_is_green_and_deterministic() {
        let a = args(&["scenario", "run", "diurnal-baseline", "--quick"]);
        let out = dispatch(&a).unwrap();
        assert!(out.starts_with("[ok] diurnal-baseline:"), "{out}");

        let j = args(&["scenario", "run", "diurnal-baseline", "--quick", "--json"]);
        let one = dispatch(&j).unwrap();
        let two = dispatch(&j).unwrap();
        assert_eq!(one, two, "golden JSON must be byte-identical across runs");
        let doc: serde_json::Value = serde_json::from_str(&one).unwrap();
        assert_eq!(doc["scenario"].as_str(), Some("diurnal-baseline"));
        assert_eq!(doc["events_lost"].as_f64(), Some(0.0));
    }

    #[test]
    fn scenario_run_writes_out_file() {
        let p = tmp("scenario.json");
        let out = dispatch(&args(&[
            "scenario",
            "run",
            "cold-start-flood",
            "--quick",
            "--json",
            "--out",
            &p,
        ]))
        .unwrap();
        assert!(out.contains("wrote scenario report"));
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(doc["scenario"].as_str(), Some("cold-start-flood"));
        assert!(doc["events_throttled"].as_f64().unwrap() > 0.0);
        let _ = std::fs::remove_file(&p);
    }
}
