//! Minimal dependency-free argument parsing: `--key value` flags plus a
//! positional subcommand and its trailing positionals.

use std::collections::BTreeMap;

/// Parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// First positional token (the subcommand), if any.
    pub command: Option<String>,
    /// Positional tokens after the subcommand (e.g. `scenario run NAME`).
    /// Commands that take none reject them with
    /// [`ArgError::ExtraPositional`] via [`Args::no_positionals`].
    pub positionals: Vec<String>,
    /// `--key value` pairs, keys without the leading dashes.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    pub flags: Vec<String>,
}

/// Errors produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// An option was given twice.
    Duplicate(String),
    /// A required option is missing.
    Missing(String),
    /// An option value failed to parse.
    Invalid {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
        /// Parser message.
        msg: String,
    },
    /// Unexpected extra positional argument.
    ExtraPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid { key, value, msg } => {
                write!(f, "invalid value {value:?} for --{key}: {msg}")
            }
            ArgError::ExtraPositional(p) => write!(f, "unexpected argument {p:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse an iterator of argument tokens (excluding the program name).
    ///
    /// Grammar: the first non-dashed token is the subcommand; every
    /// `--key` consumes the following token as its value unless that token
    /// starts with `--` or is absent, in which case it is a bare flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let takes_value = it
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if takes_value {
                    let val = it.next().expect("peeked");
                    if out.options.insert(key.to_string(), val).is_some() {
                        return Err(ArgError::Duplicate(key.to_string()));
                    }
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// Required option parsed into `T`.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .options
            .get(key)
            .ok_or_else(|| ArgError::Missing(key.to_string()))?;
        raw.parse().map_err(|e: T::Err| ArgError::Invalid {
            key: key.to_string(),
            value: raw.clone(),
            msg: e.to_string(),
        })
    }

    /// Optional option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| ArgError::Invalid {
                key: key.to_string(),
                value: raw.clone(),
                msg: e.to_string(),
            }),
        }
    }

    /// Optional string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// True if the bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Reject trailing positionals — the guard every subcommand without a
    /// positional grammar calls before dispatching.
    pub fn no_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(ArgError::ExtraPositional(p.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&["solve", "--trace", "t.json", "--beta", "2.5"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.get_str("trace"), Some("t.json"));
        assert_eq!(a.require::<f64>("beta").unwrap(), 2.5);
    }

    #[test]
    fn bare_flags() {
        let a = parse(&["solve", "--quiet", "--trace", "x"]).unwrap();
        assert!(a.has_flag("quiet"));
        assert_eq!(a.get_str("trace"), Some("x"));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = parse(&["run", "--verbose"]).unwrap();
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn duplicate_option_rejected() {
        let e = parse(&["x", "--a", "1", "--a", "2"]).unwrap_err();
        assert_eq!(e, ArgError::Duplicate("a".into()));
    }

    #[test]
    fn positionals_collected_after_subcommand() {
        let a = parse(&["scenario", "run", "diurnal-baseline", "--quick"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("scenario"));
        assert_eq!(a.positionals, vec!["run", "diurnal-baseline"]);
        assert!(a.has_flag("quick"));
        assert_eq!(
            a.no_positionals().unwrap_err(),
            ArgError::ExtraPositional("run".into())
        );
    }

    #[test]
    fn no_positionals_accepts_bare_subcommand() {
        let a = parse(&["solve", "--trace", "t.json"]).unwrap();
        a.no_positionals().unwrap();
    }

    #[test]
    fn missing_and_invalid() {
        let a = parse(&["x", "--n", "abc"]).unwrap();
        assert!(matches!(a.require::<u32>("m"), Err(ArgError::Missing(_))));
        assert!(matches!(
            a.require::<u32>("n"),
            Err(ArgError::Invalid { .. })
        ));
        assert_eq!(a.get_or("k", 7u32).unwrap(), 7);
    }
}
