//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] names everything a full-stack replay needs: where
//! the load comes from ([`WorkloadSource`]), who receives it
//! ([`TenantMix`], including heterogeneous fleets, skew storms and surge
//! waves), which control-plane knobs are on ([`EngineKnobs`]: admission
//! limits, auto-rebalancing, energy/price accounting, durability) and
//! what goes wrong along the way ([`FaultAction`]: kill-points,
//! checkpoints, forced rebalances). The runner in [`crate::run()`] compiles
//! a spec into one deterministic engine run.

use rsdc_engine::{AdmissionConfig, PolicySpec, PowerConfig, TopologyConfig};
use rsdc_hetero::FleetSpec;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::io;
use rsdc_workloads::traces::{Bursty, Diurnal, Spiky, Stationary, Trace, Weekly};

/// Where a scenario's offered load comes from. Every variant realizes to
/// a per-tick load trace, deterministically in `(t_len, seed)`.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Daily sinusoid plus noise.
    Diurnal(Diurnal),
    /// Two-state calm/burst modulated process.
    Bursty(Bursty),
    /// Sparse flash-crowd spikes over a low floor.
    Spiky(Spiky),
    /// Weekday diurnal cycles with quiet weekends.
    Weekly(Weekly),
    /// CLT-smoothed Poisson arrivals.
    Stationary(Stationary),
    /// Replay a recorded trace from disk (`.csv` or JSON, via
    /// [`rsdc_workloads::io`]); truncated to `t_len` when longer.
    File {
        /// Path to the trace file.
        path: String,
    },
    /// An embedded load sequence (tests, hand-built corner cases).
    Inline {
        /// Provenance label.
        label: String,
        /// Load per tick.
        loads: Vec<f64>,
    },
    /// Section 5.4 adversarial dilation: an alternating peak/idle hard
    /// sequence whose per-slot costs the runner dilates through
    /// [`rsdc_adversary::dilation::dilate`] — each base slot becomes
    /// `n * w` slots of its cost scaled by `1/(n*w)`, eroding any
    /// fixed-window lookahead advantage.
    Dilated {
        /// Peak load of the alternating base sequence.
        peak: f64,
        /// Slots per alternation block in the base sequence.
        period: usize,
        /// Dilation multiplier `n`.
        n: usize,
        /// Window length `w` being defeated.
        w: usize,
    },
}

impl WorkloadSource {
    /// Materialize the per-tick load trace. For [`Dilated`] sources this
    /// is the *base* (undilated) sequence of `t_len / (n*w)` slots; the
    /// runner expands it cost-side.
    ///
    /// [`Dilated`]: WorkloadSource::Dilated
    pub fn realize(&self, t_len: usize, seed: u64) -> Result<Trace, String> {
        let tr = match self {
            WorkloadSource::Diurnal(g) => g.generate(t_len, seed),
            WorkloadSource::Bursty(g) => g.generate(t_len, seed),
            WorkloadSource::Spiky(g) => g.generate(t_len, seed),
            WorkloadSource::Weekly(g) => g.generate(t_len, seed),
            WorkloadSource::Stationary(g) => g.generate(t_len, seed),
            WorkloadSource::File { path } => {
                let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
                // Content sniff before extension: binary traces announce
                // themselves with the RSDT magic whatever they're named.
                let mut tr = if io::is_binary(&data) {
                    io::read_binary(&data).map_err(|e| format!("{path}: {e}"))?
                } else if path.ends_with(".csv") {
                    io::read_csv(&data[..], path.clone()).map_err(|e| format!("{path}: {e}"))?
                } else {
                    let text = std::str::from_utf8(&data)
                        .map_err(|e| format!("{path}: not UTF-8: {e}"))?;
                    io::from_json(text).map_err(|e| format!("{path}: bad JSON trace: {e:?}"))?
                };
                if tr.is_empty() {
                    return Err(format!("{path}: empty trace"));
                }
                tr.loads.truncate(t_len);
                tr
            }
            WorkloadSource::Inline { label, loads } => {
                let mut loads = loads.clone();
                loads.truncate(t_len);
                Trace::new(label.clone(), loads)
            }
            WorkloadSource::Dilated { peak, period, n, w } => {
                let (peak, period, n, w) = (*peak, (*period).max(1), *n, *w);
                let reps = (n * w).max(1);
                let base_len = t_len / reps;
                let loads = (0..base_len)
                    .map(|t| if (t / period) % 2 == 0 { peak } else { 0.0 })
                    .collect();
                Trace::new(format!("dilated(n={n},w={w})"), loads)
            }
        };
        Ok(tr)
    }

    /// The dilation factors, when this source is adversarially dilated.
    pub fn dilation(&self) -> Option<(usize, usize)> {
        match self {
            WorkloadSource::Dilated { n, w, .. } => Some((*n, *w)),
            _ => None,
        }
    }
}

/// A load-concentration window: during `[from, until)` ticks, tenant 0
/// receives `victim_share` of the total offered load and the rest is
/// split evenly — the skew shape that trips load-aware rebalancing.
#[derive(Debug, Clone, Copy)]
pub struct SkewStorm {
    /// First tick of the storm.
    pub from: usize,
    /// First tick after the storm.
    pub until: usize,
    /// Fraction of total load the victim tenant receives, in `(0, 1]`.
    pub victim_share: f64,
}

/// A wave of short-lived extra tenants: admitted at `from`, evicted at
/// `until`, each offered the same per-tenant load as a core tenant while
/// alive — the FaaS cold-start / flash-crowd shape that exercises
/// admission and autoscaling together.
#[derive(Debug, Clone, Copy)]
pub struct SurgeWave {
    /// Number of surge tenants.
    pub tenants: usize,
    /// Admission tick.
    pub from: usize,
    /// Eviction tick (must be `> from`).
    pub until: usize,
}

/// Who receives the offered load.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Number of scalar (single-dimension) core tenants.
    pub scalar: usize,
    /// Policy every scalar tenant runs.
    pub policy: PolicySpec,
    /// Scalar fleet bound `m`.
    pub m: u32,
    /// Power-up cost `beta` (also the cost model's).
    pub beta: f64,
    /// Number of heterogeneous core tenants (0 = none).
    pub hetero: usize,
    /// Fleet for the heterogeneous tenants; `None` uses a stock two-type
    /// fleet when `hetero > 0`.
    pub fleet: Option<FleetSpec>,
    /// Optional load-concentration window.
    pub skew: Option<SkewStorm>,
    /// Optional short-lived tenant wave.
    pub surge: Option<SurgeWave>,
}

impl TenantMix {
    /// A plain mix: `n` scalar LCP tenants, no hetero, no skew, no surge.
    pub fn scalar_lcp(n: usize, m: u32, beta: f64) -> TenantMix {
        TenantMix {
            scalar: n,
            policy: PolicySpec::Lcp,
            m,
            beta,
            hetero: 0,
            fleet: None,
            skew: None,
            surge: None,
        }
    }

    /// Core tenants (scalar + hetero), excluding surge waves.
    pub fn core(&self) -> usize {
        self.scalar + self.hetero
    }

    /// The cost model scalar loads are priced through.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            beta: self.beta,
            ..CostModel::default()
        }
    }
}

/// Control-plane knobs for the run.
#[derive(Debug, Clone, Default)]
pub struct EngineKnobs {
    /// Initial shard count (0 = engine default).
    pub shards: usize,
    /// Admission limits (tenant cap, token-bucket rate), if any.
    pub admission: Option<AdmissionConfig>,
    /// Lazy auto-rebalancing policy, if any (priced when its `pricing`
    /// field carries a power config).
    pub autoscale: Option<TopologyConfig>,
    /// Energy/price accounting, if any.
    pub power: Option<PowerConfig>,
    /// Run over a durable file store (required by kill-point faults).
    pub durable: bool,
}

/// One scheduled control-plane event. Actions fire before the batch of
/// the tick they are scheduled at, in the order listed.
#[derive(Debug, Clone, Copy)]
pub enum FaultAction {
    /// Drop the engine without flushing and recover it from the durable
    /// store — the crash/recovery kill-point.
    Kill {
        /// Tick to crash at.
        at: usize,
    },
    /// Take a durable checkpoint (truncates the WAL).
    Checkpoint {
        /// Tick to checkpoint at.
        at: usize,
    },
    /// Force a live topology change to `shards`.
    Rebalance {
        /// Tick to rebalance at.
        at: usize,
        /// Target shard count.
        shards: usize,
        /// Move only the ring-diff tenant set.
        incremental: bool,
    },
}

impl FaultAction {
    /// The tick this action fires at.
    pub fn at(&self) -> usize {
        match self {
            FaultAction::Kill { at }
            | FaultAction::Checkpoint { at }
            | FaultAction::Rebalance { at, .. } => *at,
        }
    }
}

/// A complete, runnable scenario description.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Unique name (the zoo key and CLI handle).
    pub name: String,
    /// One-line human summary.
    pub summary: String,
    /// Generator seed; the whole run is deterministic in it.
    pub seed: u64,
    /// Ticks to run (for dilated sources: including dilation).
    pub t_len: usize,
    /// Offered-load source.
    pub workload: WorkloadSource,
    /// Tenant mix.
    pub tenants: TenantMix,
    /// Control-plane knobs.
    pub knobs: EngineKnobs,
    /// Scheduled fault plan.
    pub faults: Vec<FaultAction>,
}

impl ScenarioSpec {
    /// Reject specs the runner cannot execute deterministically.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".into());
        }
        if self.t_len == 0 {
            return Err("t_len must be positive".into());
        }
        if self.tenants.core() == 0 {
            return Err("at least one core tenant is required".into());
        }
        if self.tenants.scalar == 0 && self.tenants.skew.is_some() {
            return Err("a skew storm needs scalar tenants".into());
        }
        if let Some(s) = &self.tenants.skew {
            if !(s.victim_share > 0.0 && s.victim_share <= 1.0) {
                return Err(format!(
                    "skew victim_share must be in (0, 1], got {}",
                    s.victim_share
                ));
            }
            if s.from >= s.until {
                return Err("skew storm window is empty".into());
            }
        }
        if let Some(s) = &self.tenants.surge {
            if s.tenants == 0 || s.from >= s.until {
                return Err("surge wave must admit at least one tenant for
                    at least one tick"
                    .trim()
                    .to_string());
            }
        }
        if let WorkloadSource::Dilated { period, n, w, .. } = &self.workload {
            if *n == 0 || *w == 0 || *period == 0 {
                return Err("dilation needs period, n and w all >= 1".into());
            }
            if self.t_len < n * w {
                return Err(format!(
                    "t_len {} shorter than one dilated block ({})",
                    self.t_len,
                    n * w
                ));
            }
        }
        let kills = self
            .faults
            .iter()
            .any(|f| matches!(f, FaultAction::Kill { .. }));
        if kills && !self.knobs.durable {
            return Err("kill-point faults require knobs.durable".into());
        }
        for f in &self.faults {
            if f.at() >= self.t_len {
                return Err(format!(
                    "fault at tick {} is past the horizon {}",
                    f.at(),
                    self.t_len
                ));
            }
            if let FaultAction::Rebalance { shards, .. } = f {
                if *shards == 0 {
                    return Err("forced rebalance target must be >= 1 shard".into());
                }
            }
        }
        if let Some(a) = &self.knobs.autoscale {
            a.validate()?;
        }
        if let Some(p) = &self.knobs.power {
            p.validate()?;
        }
        Ok(())
    }
}

/// Per-scenario assertion bounds: the regression-fleet contract a report
/// must satisfy. `check` returns the violations (empty = pass).
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum aggregate online/OPT ratio over opt-tracked tenants.
    pub max_ratio: Option<f64>,
    /// Every offered event must be accounted for (applied, throttled,
    /// rejected or failed) — nothing silently lost.
    pub zero_lost: bool,
    /// Recovery replay must be error-free.
    pub zero_replay_errors: bool,
    /// At least this many events must apply.
    pub min_applied: u64,
    /// At least this many tenant admissions must be refused.
    pub min_rejected: u64,
    /// At least this many step events must be throttled.
    pub min_throttled: u64,
    /// At least this many crash/recovery cycles must complete.
    pub min_recoveries: u64,
    /// At least this many topology changes (auto + forced) must land.
    pub min_rebalances: u64,
    /// The energy meter must report nonzero joules and cost.
    pub require_energy: bool,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_ratio: None,
            zero_lost: true,
            zero_replay_errors: true,
            min_applied: 1,
            min_rejected: 0,
            min_throttled: 0,
            min_recoveries: 0,
            min_rebalances: 0,
            require_energy: false,
        }
    }
}

impl Bounds {
    /// Check a report against the bounds; returns human-readable
    /// violations (empty = within bounds).
    pub fn check(&self, r: &crate::report::ScenarioReport) -> Vec<String> {
        let mut errs = Vec::new();
        if let Some(max) = self.max_ratio {
            match r.ratio {
                Some(ratio) if ratio <= max => {}
                Some(ratio) => errs.push(format!("online/OPT ratio {ratio:.4} > bound {max}")),
                None => errs.push(format!("ratio unavailable but bound {max} set")),
            }
        }
        if self.zero_lost && r.events_lost != 0 {
            errs.push(format!("{} events lost", r.events_lost));
        }
        if self.zero_replay_errors && r.replay_errors != 0 {
            errs.push(format!("{} replay errors", r.replay_errors));
        }
        if r.events_applied < self.min_applied {
            errs.push(format!(
                "only {} events applied (need >= {})",
                r.events_applied, self.min_applied
            ));
        }
        if r.tenants_rejected < self.min_rejected {
            errs.push(format!(
                "only {} admits rejected (need >= {})",
                r.tenants_rejected, self.min_rejected
            ));
        }
        if r.events_throttled < self.min_throttled {
            errs.push(format!(
                "only {} events throttled (need >= {})",
                r.events_throttled, self.min_throttled
            ));
        }
        if r.recoveries < self.min_recoveries {
            errs.push(format!(
                "only {} recoveries (need >= {})",
                r.recoveries, self.min_recoveries
            ));
        }
        let rebalances = r.auto_rebalances + r.forced_rebalances;
        if rebalances < self.min_rebalances {
            errs.push(format!(
                "only {rebalances} rebalances (need >= {})",
                self.min_rebalances
            ));
        }
        if self.require_energy {
            match &r.energy {
                Some(e) if e.joules > 0.0 && e.cost > 0.0 => {}
                _ => errs.push("energy meter reported no consumption".into()),
            }
        }
        errs
    }
}
