//! Scenario lab: a declarative, trace-driven full-stack replay harness.
//!
//! A [`ScenarioSpec`] describes one complete engine exercise — where the
//! load comes from (generator, recorded trace, or the Section 5.4
//! adversary), who receives it (scalar LCP tenants, heterogeneous
//! fleets, skew storms, surge waves), which control-plane knobs are on
//! (admission limits, lazy/priced autoscaling, energy accounting,
//! durability) and what goes wrong (kill-points, checkpoints, forced
//! rebalances). [`run()`] compiles the spec into one deterministic run of
//! the real [`rsdc_engine::Engine`] and emits a [`ScenarioReport`]:
//! online cost vs the engine's crash-safe prefix-OPT tracker, joules and
//! bill from the energy meter, batch latency percentiles from the
//! metrics registry, and a full event/admission/topology/recovery
//! ledger.
//!
//! The [`mod@zoo`] module curates the named scenarios CI runs as a
//! regression fleet: each [`Scenario`] pairs a spec with [`Bounds`] the
//! report must satisfy (online/OPT ratio at the theorem bound, zero lost
//! events across recoveries, visible rejections under flood, a billed
//! energy meter, ...). Everything in a report except its wall-clock
//! section is byte-deterministic in the scenario seed —
//! [`ScenarioReport::golden_json`] is the pinned rendering.

pub mod report;
pub mod run;
pub mod spec;
pub mod zoo;

pub use report::{EnergyTotals, ScenarioReport, WallStats, WorkloadSummary};
pub use run::run;
pub use spec::{
    Bounds, EngineKnobs, FaultAction, ScenarioSpec, SkewStorm, SurgeWave, TenantMix, WorkloadSource,
};
pub use zoo::{find, names, zoo, Scenario, LCP_RATIO_BOUND};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            summary: "unit-test scenario".into(),
            seed: 7,
            t_len: 16,
            workload: WorkloadSource::Inline {
                label: "ramp".into(),
                loads: (0..16).map(|t| t as f64 / 4.0).collect(),
            },
            tenants: TenantMix::scalar_lcp(2, 4, 2.0),
            knobs: EngineKnobs::default(),
            faults: vec![],
        }
    }

    #[test]
    fn tiny_scenario_runs_and_accounts_for_every_event() {
        let report = run(&tiny_spec()).expect("tiny scenario runs");
        assert_eq!(report.ticks, 16);
        assert_eq!(report.tenants_admitted, 2);
        assert_eq!(report.events_offered, 32);
        assert_eq!(report.events_applied, 32);
        assert_eq!(report.events_lost, 0);
        assert!(report.online_cost.is_finite() && report.online_cost >= 0.0);
        let ratio = report.ratio.expect("opt-tracked tenants yield a ratio");
        assert!(
            (1.0 - 1e-9..=3.05).contains(&ratio),
            "ratio {ratio} out of range"
        );
    }

    #[test]
    fn golden_json_round_trips_and_zeroes_wall() {
        let report = run(&tiny_spec()).unwrap();
        let golden = report.golden_json();
        let back: ScenarioReport = serde_json::from_str(&golden).expect("golden parses");
        assert_eq!(back.wall, WallStats::default());
        assert_eq!(back.scenario, "tiny");
        assert_eq!(
            back.golden_json(),
            golden,
            "golden rendering is a fixed point"
        );
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut s = tiny_spec();
        s.faults.push(FaultAction::Kill { at: 3 });
        assert!(run(&s).is_err(), "kill without durable must be refused");
        let mut s = tiny_spec();
        s.t_len = 0;
        assert!(run(&s).is_err());
        let mut s = tiny_spec();
        s.tenants.scalar = 0;
        assert!(run(&s).is_err());
    }
}
