//! The scenario runner: compile a [`ScenarioSpec`] into one full-stack
//! engine run and emit a [`ScenarioReport`].
//!
//! The runner drives the real [`rsdc_engine::Engine`] — admission gate,
//! sharded policy workers, autoscale policy, energy meter, WAL — with a
//! per-tick batch derived from the realized workload. All report
//! counters are accumulated **by the runner** from batch outcomes rather
//! than read back from the metrics registry, because kill-point faults
//! restart the registry (it is process state, never journaled) while the
//! report must account for every event across incarnations.

use crate::report::{EnergyTotals, ScenarioReport, WallStats, WorkloadSummary};
use crate::spec::{FaultAction, ScenarioSpec};
use rsdc_core::Cost;
use rsdc_engine::{AdmissionError, Engine, EngineConfig, EngineError, TenantConfig, TenantReport};
use rsdc_hetero::{FleetSpec, HeteroAlgo, ServerType};
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::stats::trace_stats;
use rsdc_workloads::traces::Trace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes concurrent runs (and reruns within one process) so
/// durable scenarios never see each other's WAL directories.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// The stock two-type fleet used when a scenario asks for heterogeneous
/// tenants without specifying one.
fn default_fleet() -> FleetSpec {
    FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ])
}

/// Price a scalar load through the scenario cost model.
fn price(model: &CostModel, load: f64) -> Cost {
    Cost::Server {
        lambda: load,
        params: model.server,
        overload: model.overload,
    }
}

/// Per-tenant prepared feed: one load per tick, plus (for adversarially
/// dilated scalar tenants) one explicit pre-dilated cost per tick.
struct Feed {
    id: String,
    hetero: bool,
    loads: Vec<f64>,
    costs: Option<Vec<Cost>>,
}

/// Accumulated run counters (survive engine incarnations).
#[derive(Default)]
struct Counters {
    admitted: u64,
    rejected: u64,
    deferred: u64,
    offered: u64,
    applied: u64,
    throttled: u64,
    failed: u64,
    auto_rebalances: u64,
    forced_rebalances: u64,
    moved: u64,
    recoveries: u64,
    records_replayed: u64,
    events_replayed: u64,
    replay_errors: u64,
    checkpoints: u64,
}

/// Run a scenario to completion. Deterministic in the spec and its seed
/// (modulo the report's wall-clock section).
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioReport, String> {
    spec.validate()?;
    let model = spec.tenants.cost_model();
    let base = spec.workload.realize(spec.t_len, spec.seed)?;
    if base.is_empty() {
        return Err(format!(
            "scenario {:?}: realized workload is empty",
            spec.name
        ));
    }
    let reps = spec.workload.dilation().map(|(n, w)| n * w).unwrap_or(1);
    let ticks = base.len() * reps;
    let core = spec.tenants.core();

    // Per-core-tenant share of each base slot's load, with the skew
    // storm applied (tenant 0 is the victim).
    let share_of = |tenant: usize, t_base: usize| -> f64 {
        let total = base.loads[t_base];
        // Skew windows are expressed in final ticks.
        let t_final = t_base * reps;
        match &spec.tenants.skew {
            Some(s) if t_final >= s.from && t_final < s.until && core > 1 => {
                if tenant == 0 {
                    total * s.victim_share
                } else {
                    total * (1.0 - s.victim_share) / (core - 1) as f64
                }
            }
            _ => total / core as f64,
        }
    };

    // Prepare core-tenant feeds: scalar tenants first, then hetero.
    let mut feeds: Vec<Feed> = Vec::with_capacity(core);
    for i in 0..core {
        let hetero = i >= spec.tenants.scalar;
        let id = if hetero {
            format!("h{:03}", i - spec.tenants.scalar)
        } else {
            format!("t{i:03}")
        };
        let share_base: Vec<f64> = (0..base.len()).map(|t| share_of(i, t)).collect();
        let loads: Vec<f64> = share_base
            .iter()
            .flat_map(|&l| std::iter::repeat_n(l / reps as f64, reps))
            .collect();
        let costs = if !hetero && reps > 1 {
            // Adversarial dilation: the tenant's cost sequence is its
            // base instance dilated per Section 5.4, fed explicitly.
            let inst = model.instance(spec.tenants.m, &Trace::new(id.clone(), share_base));
            let dilated = {
                let (n, w) = spec.workload.dilation().expect("reps > 1 implies dilation");
                rsdc_adversary::dilation::dilate(&inst, n, w)
            };
            Some(
                (1..=dilated.horizon())
                    .map(|t| dilated.cost_fn(t).clone())
                    .collect(),
            )
        } else {
            None
        };
        feeds.push(Feed {
            id,
            hetero,
            loads,
            costs,
        });
    }

    // Engine + (optionally) durable store.
    let mut cfg = EngineConfig::default();
    if spec.knobs.shards > 0 {
        cfg = EngineConfig::with_shards(spec.knobs.shards);
    }
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("rsdc-scenarios").join(format!(
        "{}-{}-{seq}",
        spec.name,
        std::process::id()
    ));
    let store: Option<Arc<dyn Durability>> = if spec.knobs.durable {
        let _ = std::fs::remove_dir_all(&dir);
        Some(Arc::new(
            FileStore::open(&dir, FileStoreConfig { sync_every: 64 })
                .map_err(|e| format!("open store: {e}"))?,
        ))
    } else {
        None
    };
    let mut engine = match &store {
        Some(store) => Engine::with_store(cfg.clone(), Arc::clone(store))
            .map_err(|e| format!("durable engine: {e}"))?,
        None => Engine::new(cfg.clone()),
    };
    let mut c = Counters::default();
    let shards_initial = engine.shards() as u64;

    // Knobs before any tenant: admission caps must see the admits.
    let apply_knobs = |engine: &Engine| -> Result<(), String> {
        if let Some(limits) = spec.knobs.admission {
            engine.set_limits(limits).map_err(|e| e.to_string())?;
        }
        if let Some(power) = spec.knobs.power.clone() {
            engine.set_power(Some(power)).map_err(|e| e.to_string())?;
        }
        if let Some(autoscale) = spec.knobs.autoscale.clone() {
            engine
                .set_autoscale(Some(autoscale))
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    };
    apply_knobs(&engine)?;

    // Admit the core mix; cap rejections are a counted outcome, not an
    // error (the cold-start flood scenario runs over its cap on purpose).
    let fleet = spec.tenants.fleet.clone().unwrap_or_else(default_fleet);
    let mut live: BTreeMap<String, usize> = BTreeMap::new(); // id -> feed index
    for (i, feed) in feeds.iter().enumerate() {
        let tcfg = if feed.hetero {
            TenantConfig::hetero(feed.id.clone(), fleet.clone(), HeteroAlgo::Frontier)
        } else {
            TenantConfig::new(
                feed.id.clone(),
                spec.tenants.m,
                spec.tenants.beta,
                spec.tenants.policy.clone(),
            )
            .with_opt_tracking()
            .with_cost_model(model)
        };
        match engine.admit(tcfg) {
            Ok(()) => {
                c.admitted += 1;
                live.insert(feed.id.clone(), i);
            }
            Err(EngineError::Admission(AdmissionError::Rejected { .. })) => c.rejected += 1,
            Err(EngineError::Admission(AdmissionError::Migrating { .. })) => c.deferred += 1,
            Err(e) => return Err(format!("admit {}: {e}", feed.id)),
        }
    }

    // Surge-wave bookkeeping: ids admitted lazily at `from`, retried
    // through migration windows, evicted (report captured) at `until`.
    let surge = spec.tenants.surge;
    let mut surge_pending: Vec<String> = Vec::new();
    let mut surge_live: Vec<String> = Vec::new();
    let mut finished: Vec<TenantReport> = Vec::new();
    let surge_cfg = |id: &str| {
        TenantConfig::new(
            id,
            spec.tenants.m,
            spec.tenants.beta,
            spec.tenants.policy.clone(),
        )
        .with_opt_tracking()
        .with_cost_model(model)
    };

    for t in 0..ticks {
        // 1. Scheduled faults, in plan order.
        for fault in spec.faults.iter().filter(|f| f.at() == t) {
            match *fault {
                FaultAction::Checkpoint { .. } => {
                    engine
                        .checkpoint()
                        .map_err(|e| format!("checkpoint: {e}"))?;
                    c.checkpoints += 1;
                }
                FaultAction::Rebalance {
                    shards,
                    incremental,
                    ..
                } => {
                    let report = if incremental {
                        engine.rebalance_incremental(shards, None)
                    } else {
                        engine.rebalance(shards, None)
                    }
                    .map_err(|e| format!("rebalance: {e}"))?;
                    c.forced_rebalances += 1;
                    c.moved += report.moved as u64;
                }
                FaultAction::Kill { .. } => {
                    let store = store.as_ref().expect("validated: kill implies durable");
                    drop(engine);
                    let (recovered, report) = Engine::recover(cfg.clone(), Arc::clone(store))
                        .map_err(|e| format!("recover: {e}"))?;
                    engine = recovered;
                    c.recoveries += 1;
                    c.records_replayed += report.records_replayed as u64;
                    c.events_replayed += report.events_replayed as u64;
                    c.replay_errors += report.replay_errors as u64;
                    // Admission limits, the energy meter and the
                    // autoscale policy are process state (never
                    // journaled): re-arm them, as an operator would.
                    apply_knobs(&engine)?;
                }
            }
        }

        // 2. Surge admissions (initial wave at `from`, plus deferred
        // retries), and the eviction edge at `until`.
        if let Some(s) = surge {
            if t == s.from {
                surge_pending.extend((0..s.tenants).map(|i| format!("s{i:03}")));
            }
            if t >= s.from && t < s.until && !surge_pending.is_empty() {
                let mut still_pending = Vec::new();
                for id in surge_pending.drain(..) {
                    match engine.admit(surge_cfg(&id)) {
                        Ok(()) => {
                            c.admitted += 1;
                            surge_live.push(id);
                        }
                        Err(EngineError::Admission(AdmissionError::Rejected { .. })) => {
                            c.rejected += 1;
                        }
                        Err(EngineError::Admission(AdmissionError::Migrating { .. })) => {
                            c.deferred += 1;
                            still_pending.push(id);
                        }
                        Err(e) => return Err(format!("admit {id}: {e}")),
                    }
                }
                surge_pending = still_pending;
            }
            if t == s.until {
                surge_pending.clear();
                for id in surge_live.drain(..) {
                    let report = engine.evict(&id).map_err(|e| format!("evict {id}: {e}"))?;
                    finished.push(report);
                }
            }
        }

        // 3. The tick's batch: every live core tenant plus active surge
        // tenants (each surge tenant carries one core share's load).
        let base_slot = t / reps;
        let mut batch: Vec<(String, Cost, Option<f64>)> = Vec::new();
        for (id, &i) in &live {
            let feed = &feeds[i];
            let load = feed.loads[t];
            let cost = match &feed.costs {
                Some(costs) => costs[t].clone(),
                None if feed.hetero => Cost::Zero,
                None => price(&model, load),
            };
            batch.push((id.clone(), cost, Some(load)));
        }
        let surge_load = base.loads[base_slot] / (core as f64 * reps as f64);
        for id in &surge_live {
            batch.push((id.clone(), price(&model, surge_load), Some(surge_load)));
        }
        if !batch.is_empty() {
            c.offered += batch.len() as u64;
            let outcomes = engine
                .step_batch_loads(batch)
                .map_err(|e| format!("tick {t}: {e}"))?;
            for outcome in outcomes {
                match &outcome.error {
                    None => c.applied += 1,
                    Some(msg) if msg.contains("throttled") => c.throttled += 1,
                    Some(_) => c.failed += 1,
                }
            }
        }

        // 4. Let the autoscale policy act on what it just observed.
        if spec.knobs.autoscale.is_some() {
            if let Some(report) = engine
                .maybe_autoscale()
                .map_err(|e| format!("autoscale: {e}"))?
            {
                c.auto_rebalances += 1;
                c.moved += report.moved as u64;
            }
        }
    }

    // Flush lookahead tails, then gather final tenant reports (sorted by
    // id so float summation order is deterministic).
    let mut ids = engine.tenant_ids().map_err(|e| e.to_string())?;
    ids.sort();
    for id in &ids {
        engine.finish(id).map_err(|e| format!("finish {id}: {e}"))?;
    }
    finished.extend(engine.report_all().map_err(|e| e.to_string())?);
    finished.sort_by(|a, b| a.id.cmp(&b.id));

    let mut online_cost = 0.0;
    let mut online_tracked = 0.0;
    let mut opt_cost = 0.0;
    let mut tracked = false;
    for r in &finished {
        let total = r.breakdown.total();
        online_cost += total;
        if let Some(opt) = r.opt_cost {
            online_tracked += total;
            opt_cost += opt;
            tracked = true;
        }
    }
    let ratio = (tracked && opt_cost > 0.0).then(|| online_tracked / opt_cost);

    let energy = engine.energy_status().map(|s| EnergyTotals {
        joules: s.joules,
        cost: s.cost,
    });

    // Wall-clock batch latencies from the (last incarnation's) registry.
    let mut wall = WallStats::default();
    for m in engine.obs().registry().snapshot() {
        if m.id.name == "engine_batch_ns" {
            if let rsdc_obs::MetricValue::Histogram(h) = m.value {
                wall.p50_batch_ns = wall.p50_batch_ns.max(h.p50);
                wall.p99_batch_ns = wall.p99_batch_ns.max(h.p99);
                wall.max_batch_ns = wall.max_batch_ns.max(h.max);
            }
        }
    }

    let shards_final = engine.shards() as u64;
    engine.shutdown();
    if store.is_some() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The realized total workload, dilation expansion included.
    let realized = if reps > 1 {
        Trace::new(
            base.label.clone(),
            base.loads
                .iter()
                .flat_map(|&l| std::iter::repeat_n(l / reps as f64, reps))
                .collect(),
        )
    } else {
        base.clone()
    };

    Ok(ScenarioReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        ticks: ticks as u64,
        tenants_admitted: c.admitted,
        tenants_rejected: c.rejected,
        tenants_deferred: c.deferred,
        events_offered: c.offered,
        events_applied: c.applied,
        events_throttled: c.throttled,
        events_failed: c.failed,
        events_lost: c.offered - c.applied - c.throttled - c.failed,
        online_cost,
        opt_cost,
        online_tracked_cost: online_tracked,
        ratio,
        shards_initial,
        shards_final,
        auto_rebalances: c.auto_rebalances,
        forced_rebalances: c.forced_rebalances,
        tenants_moved: c.moved,
        recoveries: c.recoveries,
        records_replayed: c.records_replayed,
        events_replayed: c.events_replayed,
        replay_errors: c.replay_errors,
        checkpoints: c.checkpoints,
        energy,
        workload: WorkloadSummary {
            label: realized.label.clone(),
            stats: trace_stats(&realized),
        },
        wall,
    })
}
