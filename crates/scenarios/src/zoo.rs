//! The curated scenario zoo: the CI regression fleet.
//!
//! Each entry pairs a [`ScenarioSpec`] with the [`Bounds`] its report
//! must satisfy. The zoo runs in two sizes: `quick` (push CI, ~120
//! ticks) and full (nightly heavy job, ~960 ticks); the specs are
//! identical up to horizon scaling, so a quick pass is a faithful
//! miniature of the nightly run.

use crate::spec::{
    Bounds, EngineKnobs, FaultAction, ScenarioSpec, SkewStorm, SurgeWave, TenantMix, WorkloadSource,
};
use rsdc_engine::{AdmissionConfig, TopologyConfig};
use rsdc_power::{PowerConfig, PowerSpec, PriceSchedule};
use rsdc_workloads::traces::{Bursty, Diurnal, Spiky, Weekly};

/// A zoo entry: what to run and what the run must look like.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The runnable spec.
    pub spec: ScenarioSpec,
    /// The regression contract.
    pub bounds: Bounds,
}

/// LCP is 3-competitive; the fleet allows a hair of float-summation
/// slack on top of the theorem bound.
pub const LCP_RATIO_BOUND: f64 = 3.05;

fn horizon(quick: bool) -> usize {
    if quick {
        120
    } else {
        960
    }
}

/// The linear power model + square-wave tariff shared by the priced
/// scenarios.
fn square_wave_power(t_len: usize) -> PowerConfig {
    PowerConfig {
        model: PowerSpec::Linear {
            idle: 100.0,
            peak: 250.0,
        },
        capacity: 8.0,
        price: PriceSchedule::Step {
            period: (t_len as u64 / 8).max(1),
            prices: vec![1.0, 3.5],
        },
    }
}

/// The full regression fleet, in stable order.
pub fn zoo(quick: bool) -> Vec<Scenario> {
    let t = horizon(quick);
    let out = vec![
        // 1. The baseline: a plain diurnal day against eight LCP tenants.
        //    Pins the end-to-end online/OPT ratio at the theorem bound.
        Scenario {
            spec: ScenarioSpec {
                name: "diurnal-baseline".into(),
                summary: "Diurnal load, 8 scalar LCP tenants, no faults: the ratio pin".into(),
                seed: 11,
                t_len: t,
                workload: WorkloadSource::Diurnal(Diurnal::default()),
                tenants: TenantMix::scalar_lcp(8, 8, 4.0),
                knobs: EngineKnobs {
                    shards: 2,
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                ..Bounds::default()
            },
        },
        // 2. Bursty load plus a surge wave of short-lived tenants, with the
        //    autoscale policy free to react: the topology must actually move.
        Scenario {
            spec: ScenarioSpec {
                name: "bursty-autoscale".into(),
                summary: "Bursty load + tenant surge wave under lazy autoscaling".into(),
                seed: 23,
                t_len: t,
                workload: WorkloadSource::Bursty(Bursty::default()),
                tenants: TenantMix {
                    surge: Some(SurgeWave {
                        tenants: 12,
                        from: t / 4,
                        until: 3 * t / 4,
                    }),
                    ..TenantMix::scalar_lcp(6, 8, 4.0)
                },
                knobs: EngineKnobs {
                    shards: 2,
                    autoscale: Some(TopologyConfig {
                        switch_cost: 4.0,
                        ..TopologyConfig::new(1, 6)
                    }),
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                min_rebalances: 1,
                ..Bounds::default()
            },
        },
        // 3. A skew storm concentrates 85% of the load on one victim tenant
        //    while forced incremental rebalances reshape the ring mid-storm.
        Scenario {
            spec: ScenarioSpec {
                name: "skew-storm".into(),
                summary: "85% load skew onto one tenant across forced incremental rebalances"
                    .into(),
                seed: 37,
                t_len: t,
                workload: WorkloadSource::Diurnal(Diurnal::default()),
                tenants: TenantMix {
                    skew: Some(SkewStorm {
                        from: t / 3,
                        until: 2 * t / 3,
                        victim_share: 0.85,
                    }),
                    ..TenantMix::scalar_lcp(8, 8, 4.0)
                },
                knobs: EngineKnobs {
                    shards: 2,
                    ..EngineKnobs::default()
                },
                faults: vec![
                    FaultAction::Rebalance {
                        at: t / 3,
                        shards: 4,
                        incremental: true,
                    },
                    FaultAction::Rebalance {
                        at: 2 * t / 3,
                        shards: 2,
                        incremental: true,
                    },
                ],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                min_rebalances: 2,
                ..Bounds::default()
            },
        },
        // 4. A square-wave electricity tariff with the priced autoscaler:
        //    the energy meter must bill the run and the ratio must hold.
        Scenario {
            spec: ScenarioSpec {
                name: "price-squarewave".into(),
                summary: "Square-wave tariff, metered energy, priced autoscaling".into(),
                seed: 41,
                t_len: t,
                workload: WorkloadSource::Diurnal(Diurnal::default()),
                tenants: TenantMix::scalar_lcp(4, 8, 4.0),
                knobs: EngineKnobs {
                    shards: 2,
                    power: Some(square_wave_power(t)),
                    autoscale: Some(TopologyConfig {
                        pricing: Some(square_wave_power(t)),
                        ..TopologyConfig::new(1, 4)
                    }),
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                require_energy: true,
                ..Bounds::default()
            },
        },
        // 5. Crash mid-migration, recover, checkpoint, crash again: the
        //    durability pin. Every offered event must be accounted for and
        //    replay must be error-free across both recoveries.
        Scenario {
            spec: ScenarioSpec {
                name: "crash-recovery".into(),
                summary: "Kill mid-incremental-migration and after a checkpoint; zero lost events"
                    .into(),
                seed: 53,
                t_len: t,
                workload: WorkloadSource::Diurnal(Diurnal::default()),
                tenants: TenantMix::scalar_lcp(6, 8, 4.0),
                knobs: EngineKnobs {
                    shards: 2,
                    durable: true,
                    ..EngineKnobs::default()
                },
                faults: vec![
                    FaultAction::Rebalance {
                        at: t / 4,
                        shards: 3,
                        incremental: true,
                    },
                    FaultAction::Kill { at: t / 4 + 1 },
                    FaultAction::Checkpoint { at: t / 2 },
                    FaultAction::Kill { at: 3 * t / 4 },
                ],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                min_recoveries: 2,
                min_rebalances: 1,
                ..Bounds::default()
            },
        },
        // 6. The Section 5.4 adversary: dilated alternating load that erodes
        //    fixed-window lookahead. LCP's memoryless bound must still hold.
        Scenario {
            spec: ScenarioSpec {
                name: "adversarial-dilation".into(),
                summary: "Dilated alternating adversary (n=2, w=3) against LCP".into(),
                seed: 67,
                t_len: t,
                workload: WorkloadSource::Dilated {
                    peak: 6.0,
                    period: 2,
                    n: 2,
                    w: 3,
                },
                tenants: TenantMix::scalar_lcp(4, 8, 6.0),
                knobs: EngineKnobs {
                    shards: 2,
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                ..Bounds::default()
            },
        },
        // 7. A mixed fleet: scalar LCP tenants next to heterogeneous
        //    two-type fleets on a weekly trace. The ratio pin covers the
        //    opt-tracked scalar half; the hetero half must simply serve.
        Scenario {
            spec: ScenarioSpec {
                name: "hetero-fleet".into(),
                summary: "4 scalar LCP + 4 heterogeneous two-type fleet tenants, weekly load"
                    .into(),
                seed: 79,
                t_len: t,
                workload: WorkloadSource::Weekly(Weekly::default()),
                tenants: TenantMix {
                    hetero: 4,
                    ..TenantMix::scalar_lcp(4, 8, 4.0)
                },
                knobs: EngineKnobs {
                    shards: 2,
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                max_ratio: Some(LCP_RATIO_BOUND),
                ..Bounds::default()
            },
        },
        // 8. Cold-start flood: more tenants than the cap, a surge wave on
        //    top, and a sub-1/tick token bucket. Admission must visibly
        //    reject and throttle — and still lose nothing.
        Scenario {
            spec: ScenarioSpec {
                name: "cold-start-flood".into(),
                summary: "Over-cap tenant flood with rate limiting: reject, throttle, lose nothing"
                    .into(),
                seed: 83,
                t_len: t,
                workload: WorkloadSource::Spiky(Spiky::default()),
                tenants: TenantMix {
                    surge: Some(SurgeWave {
                        tenants: 8,
                        from: t / 3,
                        until: 2 * t / 3,
                    }),
                    ..TenantMix::scalar_lcp(12, 8, 4.0)
                },
                knobs: EngineKnobs {
                    shards: 2,
                    admission: Some(AdmissionConfig {
                        max_tenants: 10,
                        rate: 0.6,
                        burst: 1.0,
                    }),
                    ..EngineKnobs::default()
                },
                faults: vec![],
            },
            bounds: Bounds {
                min_rejected: 2,
                min_throttled: 1,
                ..Bounds::default()
            },
        },
    ];
    out
}

/// Look up one zoo scenario by name.
pub fn find(name: &str, quick: bool) -> Option<Scenario> {
    zoo(quick).into_iter().find(|s| s.spec.name == name)
}

/// The zoo's scenario names, in fleet order.
pub fn names() -> Vec<String> {
    zoo(true).into_iter().map(|s| s.spec.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_specs_validate_in_both_sizes() {
        for quick in [true, false] {
            let fleet = zoo(quick);
            assert_eq!(fleet.len(), 8);
            for s in &fleet {
                s.spec.validate().unwrap_or_else(|e| {
                    panic!("zoo spec {:?} (quick={quick}) invalid: {e}", s.spec.name)
                });
            }
        }
    }

    #[test]
    fn zoo_names_are_unique_and_stable() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate zoo names");
        assert_eq!(names[0], "diurnal-baseline");
        assert!(names.contains(&"crash-recovery".to_string()));
        assert!(names.contains(&"adversarial-dilation".to_string()));
    }

    #[test]
    fn find_resolves_every_name() {
        for name in names() {
            assert!(find(&name, true).is_some(), "find({name:?}) failed");
        }
        assert!(find("no-such-scenario", true).is_none());
    }
}
