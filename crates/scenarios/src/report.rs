//! The comparable scenario report.
//!
//! Everything in a [`ScenarioReport`] except the [`WallStats`] section is
//! **deterministic** in the scenario seed: counters are accumulated by
//! the runner itself (so they survive kill-point recoveries, which reset
//! the in-process metrics registry), costs are summed over tenant
//! reports in sorted-id order, and floats render through the shortest
//! round-trip formatter. The wall section carries wall-clock batch
//! latencies from the metrics registry and is zeroed by
//! [`ScenarioReport::golden_json`], the rendering the determinism pins
//! compare byte-for-byte — the same canonicalization contract the wire
//! conformance transcripts use for histogram stats.

use rsdc_workloads::stats::TraceStats;
use serde::{Deserialize, Serialize};

/// Energy-meter totals for the run (present when the scenario configured
/// power accounting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTotals {
    /// Joules (watt·ticks) metered across the run's last engine
    /// incarnation.
    pub joules: f64,
    /// Priced cost of those joules.
    pub cost: f64,
}

/// Wall-clock latency observations — the only non-deterministic section.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WallStats {
    /// Worst per-shard p50 batch latency, nanoseconds.
    pub p50_batch_ns: u64,
    /// Worst per-shard p99 batch latency, nanoseconds.
    pub p99_batch_ns: u64,
    /// Largest single batch latency observed, nanoseconds.
    pub max_batch_ns: u64,
}

/// Shape statistics of the realized workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Trace provenance label.
    pub label: String,
    /// Summary statistics (all finite; see `Trace::peak_to_mean`).
    pub stats: TraceStats,
}

/// The comparable outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed the run was deterministic in.
    pub seed: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Tenants successfully admitted (core + surge).
    pub tenants_admitted: u64,
    /// Admissions refused at the tenant cap.
    pub tenants_rejected: u64,
    /// Admissions deferred by an open migration window (later retried).
    pub tenants_deferred: u64,
    /// Step events offered to the engine.
    pub events_offered: u64,
    /// Events applied by shard workers.
    pub events_applied: u64,
    /// Events refused by a token bucket.
    pub events_throttled: u64,
    /// Events that failed deterministically (e.g. unknown tenant).
    pub events_failed: u64,
    /// Offered events not accounted for by the three outcomes above —
    /// must be zero; anything else is a harness or engine bug.
    pub events_lost: u64,
    /// Total online cost (operating + switching) over all tenants,
    /// including evicted surge tenants.
    pub online_cost: f64,
    /// Aggregate offline-OPT cost over opt-tracked tenants (the engine's
    /// prefix-OPT tracker, crash-safe across recoveries).
    pub opt_cost: f64,
    /// Online cost over opt-tracked tenants only (the ratio numerator).
    pub online_tracked_cost: f64,
    /// `online_tracked_cost / opt_cost`; `None` when no tenant tracked
    /// OPT or OPT is zero (kept out of JSON as `null` — never `inf`).
    pub ratio: Option<f64>,
    /// Shard count at the start of the run.
    pub shards_initial: u64,
    /// Shard count at the end of the run.
    pub shards_final: u64,
    /// Topology changes applied by the autoscale policy.
    pub auto_rebalances: u64,
    /// Topology changes forced by the fault plan.
    pub forced_rebalances: u64,
    /// Tenants moved across all topology changes.
    pub tenants_moved: u64,
    /// Kill/recover cycles completed.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub records_replayed: u64,
    /// Stream events re-applied from the WAL across all recoveries.
    pub events_replayed: u64,
    /// Replay failures across all recoveries (must be zero).
    pub replay_errors: u64,
    /// Durable checkpoints taken by the fault plan.
    pub checkpoints: u64,
    /// Energy totals, when power accounting was configured.
    pub energy: Option<EnergyTotals>,
    /// Realized workload shape.
    pub workload: WorkloadSummary,
    /// Wall-clock latencies (non-deterministic; zeroed in golden form).
    pub wall: WallStats,
}

impl ScenarioReport {
    /// Full JSON rendering, wall-clock section included.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report renders") + "\n"
    }

    /// Deterministic JSON rendering: the wall section zeroed, everything
    /// else untouched. Two runs of the same spec and seed produce
    /// byte-identical golden JSON.
    pub fn golden_json(&self) -> String {
        let mut canon = self.clone();
        canon.wall = WallStats::default();
        serde_json::to_string_pretty(&canon).expect("report renders") + "\n"
    }

    /// One-line human summary for fleet logs.
    pub fn summary_line(&self) -> String {
        let ratio = match self.ratio {
            Some(r) => format!("{r:.3}"),
            None => "n/a".to_string(),
        };
        format!(
            "{}: ratio={} online={:.1} opt={:.1} applied={} throttled={} \
             rejected={} lost={} rebalances={} recoveries={} shards={}->{}",
            self.scenario,
            ratio,
            self.online_cost,
            self.opt_cost,
            self.events_applied,
            self.events_throttled,
            self.tenants_rejected,
            self.events_lost,
            self.auto_rebalances + self.forced_rebalances,
            self.recoveries,
            self.shards_initial,
            self.shards_final,
        )
    }
}
