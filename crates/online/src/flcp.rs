//! Fractional Lazy Capacity Provisioning — the *continuous-setting* LCP of
//! Lin et al. [22, 24], realized on a refined state grid.
//!
//! The continuous extension of a discrete instance is piecewise linear
//! (eq. 3), so the continuous problem restricted to the grid
//! `{i/k | i = 0..k*m}` loses at most `O(1/k)` per slot; running the
//! *discrete* LCP machinery on that grid (states scaled by `k`, `beta`
//! scaled by `1/k`) yields the fractional LCP trajectory. As `k -> 1` this
//! degrades to discrete LCP; large `k` approximates the continuous
//! algorithm whose competitive ratio is 3 in the continuous setting.
//!
//! This bridges the paper's discrete world back to the Lin et al. original
//! and provides the natural fractional input for the Section 4 rounding as
//! an alternative to [`crate::fractional::HalfStep`].

use crate::bounds::BoundTracker;
use crate::traits::FractionalAlgorithm;
use rsdc_core::prelude::*;

/// Fractional LCP on a `1/k` grid over `[0, m]`.
#[derive(Debug, Clone)]
pub struct GridLcp {
    m: u32,
    k: u32,
    tracker: BoundTracker,
    /// Current state in *grid units* (servers = state / k).
    state: u32,
}

impl GridLcp {
    /// New fractional LCP with grid resolution `1/k` (`k >= 1`).
    pub fn new(m: u32, beta: f64, k: u32) -> Self {
        assert!(k >= 1, "grid resolution must be at least 1");
        let fine_m = m.checked_mul(k).expect("k*m must fit in u32");
        Self {
            m,
            k,
            tracker: BoundTracker::new(fine_m, beta / k as f64),
            state: 0,
        }
    }

    /// Current fractional state in server units.
    pub fn state(&self) -> f64 {
        self.state as f64 / self.k as f64
    }

    /// Grid resolution.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fleet size in server units.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Capture full state (tracker + grid-unit state) for streaming
    /// snapshots.
    pub fn snapshot(&self) -> (crate::bounds::TrackerSnapshot, u32) {
        (self.tracker.snapshot(), self.state)
    }

    /// Rebuild from a [`GridLcp::snapshot`]; `m` and `k` must match the
    /// original configuration (the tracker snapshot records `m * k`).
    pub fn from_snapshot(
        m: u32,
        k: u32,
        tracker: &crate::bounds::TrackerSnapshot,
        state: u32,
    ) -> Result<Self, rsdc_core::Error> {
        if tracker.m != m.checked_mul(k).unwrap_or(0) {
            return Err(rsdc_core::Error::InvalidParameter(format!(
                "GridLcp snapshot tracker covers {} states, expected m*k = {}",
                tracker.m,
                m as u64 * k as u64
            )));
        }
        Ok(Self {
            m,
            k,
            tracker: crate::bounds::BoundTracker::from_snapshot(tracker)?,
            state,
        })
    }
}

impl FractionalAlgorithm for GridLcp {
    fn step(&mut self, f: &Cost) -> f64 {
        // Present the interpolated cost on the fine grid to the tracker.
        let vals: Vec<f64> = (0..=self.m * self.k)
            .map(|i| f.interpolate(i as f64 / self.k as f64))
            .collect();
        let fine = Cost::table(vals);
        self.tracker.step(&fine);
        let lo = self.tracker.x_low();
        let hi = self.tracker.x_up();
        self.state = self.state.clamp(lo.min(hi), hi.max(lo));
        self.state()
    }

    fn name(&self) -> String {
        format!("LCP(1/{})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::Lcp;
    use crate::traits::{run, run_frac};

    fn inst() -> Instance {
        let costs: Vec<Cost> = (0..30)
            .map(|t| Cost::abs(1.0, 2.0 + 1.9 * ((t as f64) * 0.6).sin()))
            .collect();
        Instance::new(4, 2.0, costs).unwrap()
    }

    #[test]
    fn k1_matches_discrete_lcp() {
        let inst = inst();
        let mut grid = GridLcp::new(4, 2.0, 1);
        let frac = run_frac(&mut grid, &inst);
        let mut disc = Lcp::new(4, 2.0);
        let xs = run(&mut disc, &inst);
        for (a, b) in frac.0.iter().zip(&xs.0) {
            assert!((a - *b as f64).abs() < 1e-12, "grid {a} vs discrete {b}");
        }
    }

    #[test]
    fn states_live_on_the_grid() {
        let inst = inst();
        let k = 4;
        let mut grid = GridLcp::new(4, 2.0, k);
        let frac = run_frac(&mut grid, &inst);
        for &x in &frac.0 {
            let scaled = x * k as f64;
            assert!((scaled - scaled.round()).abs() < 1e-9, "{x} off-grid");
            assert!((0.0..=4.0).contains(&x));
        }
    }

    #[test]
    fn finer_grids_cost_no_more_in_the_continuous_model() {
        // The fractional LCP's continuous-extension cost should not blow up
        // with refinement; typically it improves slightly (less
        // overshooting). We assert monotone-ish behaviour with slack.
        let inst = inst();
        let mut costs = Vec::new();
        for k in [1u32, 2, 8] {
            let mut grid = GridLcp::new(4, 2.0, k);
            let frac = run_frac(&mut grid, &inst);
            costs.push(frac_cost(&inst, &frac, FracMode::Interpolate));
        }
        assert!(costs[2] <= costs[0] * 1.05 + 1e-9, "{costs:?}");
    }

    #[test]
    fn three_competitive_against_continuous_optimum() {
        // LCP is 3-competitive in the continuous setting; check against the
        // fine-grid offline optimum.
        let inst = inst();
        let k = 8;
        let mut grid = GridLcp::new(4, 2.0, k);
        let frac = run_frac(&mut grid, &inst);
        let alg = frac_cost(&inst, &frac, FracMode::Interpolate);
        let opt = rsdc_offline::rounding::refined_grid_optimum(&inst, k);
        assert!(
            alg <= 3.0 * opt + 1e-9,
            "grid LCP {alg} vs 3*OPT {}",
            3.0 * opt
        );
    }
}
