//! Online algorithm interfaces and runners.
//!
//! In the online problem the convex functions `f_t` arrive one at a time; an
//! algorithm must commit to `x_t` knowing only `f_1..=f_t` (plus, for
//! lookahead variants, a finite window of future functions).

use rsdc_core::prelude::*;

/// A deterministic or randomized online algorithm producing **integral**
/// states.
pub trait OnlineAlgorithm {
    /// Consume the next cost function and commit to the number of active
    /// servers for this slot.
    fn step(&mut self, f: &Cost) -> u32;

    /// Human-readable algorithm name (for reports).
    fn name(&self) -> String;
}

/// An online algorithm producing **fractional** states (continuous setting).
pub trait FractionalAlgorithm {
    /// Consume the next cost function and commit to a fractional state.
    fn step(&mut self, f: &Cost) -> f64;

    /// Human-readable algorithm name (for reports).
    fn name(&self) -> String;
}

/// An online algorithm with a prediction window: at each step it sees the
/// current function together with up to `w` future functions.
pub trait LookaheadAlgorithm {
    /// `window[0]` is the current slot's function; `window[1..]` are the
    /// next (up to `w`) functions, possibly fewer near the end of the
    /// horizon.
    fn step(&mut self, window: &[Cost]) -> u32;

    /// Human-readable algorithm name (for reports).
    fn name(&self) -> String;
}

/// Feed an entire instance to an online algorithm and collect its schedule.
pub fn run<A: OnlineAlgorithm + ?Sized>(algo: &mut A, inst: &Instance) -> Schedule {
    let mut xs = Vec::with_capacity(inst.horizon());
    for t in 1..=inst.horizon() {
        let x = algo.step(inst.cost_fn(t));
        assert!(
            x <= inst.m(),
            "{} emitted infeasible state {x} > m = {}",
            algo.name(),
            inst.m()
        );
        xs.push(x);
    }
    Schedule(xs)
}

/// Feed an entire instance to a fractional algorithm.
pub fn run_frac<A: FractionalAlgorithm + ?Sized>(algo: &mut A, inst: &Instance) -> FracSchedule {
    let mut xs = Vec::with_capacity(inst.horizon());
    for t in 1..=inst.horizon() {
        let x = algo.step(inst.cost_fn(t));
        assert!(
            (0.0..=inst.m() as f64).contains(&x),
            "{} emitted infeasible fractional state {x}",
            algo.name()
        );
        xs.push(x);
    }
    FracSchedule(xs)
}

/// Feed an instance to a lookahead algorithm with window length `w`.
pub fn run_lookahead<A: LookaheadAlgorithm + ?Sized>(
    algo: &mut A,
    inst: &Instance,
    w: usize,
) -> Schedule {
    let t_len = inst.horizon();
    let mut xs = Vec::with_capacity(t_len);
    for t in 1..=t_len {
        let hi = (t + w).min(t_len);
        let window: Vec<Cost> = (t..=hi).map(|s| inst.cost_fn(s).clone()).collect();
        let x = algo.step(&window);
        assert!(x <= inst.m(), "{} emitted infeasible state", algo.name());
        xs.push(x);
    }
    Schedule(xs)
}

/// Competitive ratio of a discrete schedule against the offline optimum of
/// the same instance. Returns `(alg_cost, opt_cost, ratio)`; the ratio is
/// `1.0` when both costs are (near) zero.
pub fn competitive_ratio(inst: &Instance, xs: &Schedule) -> (f64, f64, f64) {
    let alg = cost(inst, xs);
    let opt = rsdc_offline::dp::solve_cost_only(inst);
    let ratio = if opt.abs() < 1e-300 {
        if alg.abs() < 1e-300 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        alg / opt
    };
    (alg, opt, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial algorithm staying at a constant state.
    struct Constant(u32);
    impl OnlineAlgorithm for Constant {
        fn step(&mut self, _f: &Cost) -> u32 {
            self.0
        }
        fn name(&self) -> String {
            format!("constant({})", self.0)
        }
    }

    #[test]
    fn run_collects_schedule() {
        let inst = Instance::new(4, 1.0, vec![Cost::Zero, Cost::Zero]).unwrap();
        let mut a = Constant(3);
        let xs = run(&mut a, &inst);
        assert_eq!(xs, Schedule(vec![3, 3]));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn run_rejects_out_of_range() {
        let inst = Instance::new(2, 1.0, vec![Cost::Zero]).unwrap();
        let mut a = Constant(3);
        let _ = run(&mut a, &inst);
    }

    #[test]
    fn ratio_against_optimum() {
        // One slot wanting 2 servers with slope 10: OPT moves (cost 2*1),
        // constant-0 pays 20.
        let inst = Instance::new(4, 1.0, vec![Cost::abs(10.0, 2.0)]).unwrap();
        let xs = Schedule(vec![0]);
        let (alg, opt, ratio) = competitive_ratio(&inst, &xs);
        assert!((alg - 20.0).abs() < 1e-12);
        assert!((opt - 2.0).abs() < 1e-12);
        assert!((ratio - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_ratio_is_one() {
        let inst = Instance::new(4, 1.0, vec![Cost::Zero]).unwrap();
        let (_, _, r) = competitive_ratio(&inst, &Schedule(vec![0]));
        assert_eq!(r, 1.0);
    }

    #[test]
    fn lookahead_window_clips_at_horizon() {
        struct CountWindow(Vec<usize>);
        impl LookaheadAlgorithm for CountWindow {
            fn step(&mut self, window: &[Cost]) -> u32 {
                self.0.push(window.len());
                0
            }
            fn name(&self) -> String {
                "count".into()
            }
        }
        let inst = Instance::new(1, 1.0, vec![Cost::Zero; 4]).unwrap();
        let mut a = CountWindow(Vec::new());
        let _ = run_lookahead(&mut a, &inst, 2);
        assert_eq!(a.0, vec![3, 3, 2, 1]);
    }
}
