//! # rsdc-online — competitive online algorithms
//!
//! The online side of Albers & Quedenfeld (SPAA 2018): cost functions
//! arrive one per slot and the algorithm commits to `x_t` before seeing
//! `f_{t+1}`.
//!
//! * [`lcp`] — the discrete **Lazy Capacity Provisioning** algorithm,
//!   3-competitive (Theorem 2) and optimal among deterministic algorithms
//!   (Theorem 4);
//! * [`bounds`] — incremental maintenance of the LCP bounds `x^L`, `x^U`
//!   and the value functions `\hat C^L`, `\hat C^U` (Lemmas 7–10 are
//!   runtime-checkable);
//! * [`fractional`] — fractional algorithms for the continuous setting
//!   (half-subgradient "algorithm B", memoryless balance, OBD);
//! * [`randomized`] — the Section 4 randomized rounding, turning any
//!   2-competitive fractional schedule into a 2-competitive randomized
//!   integral algorithm (Theorem 3, optimal by Theorem 8);
//! * [`prediction`] — lookahead algorithms for the prediction-window model
//!   of Section 5.4;
//! * [`streaming`] — object-safe, resumable streaming wrappers with
//!   snapshot/restore, the substrate of the `rsdc-engine` service layer;
//! * [`traits`] — the algorithm interfaces and runners.
//!
//! ## Example
//!
//! ```
//! use rsdc_core::prelude::*;
//! use rsdc_online::lcp::Lcp;
//! use rsdc_online::traits::{run, competitive_ratio, OnlineAlgorithm};
//!
//! let inst = Instance::new(8, 2.0, (0..50).map(|t| {
//!     Cost::abs(1.0, 4.0 + 3.0 * ((t as f64) * 0.4).sin())
//! }).collect()).unwrap();
//!
//! let mut lcp = Lcp::new(8, 2.0);
//! let xs = run(&mut lcp, &inst);
//! let (_alg, _opt, ratio) = competitive_ratio(&inst, &xs);
//! assert!(ratio <= 3.0 + 1e-9); // Theorem 2
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod bounds;
pub mod flcp;
pub mod fractional;
pub mod lcp;
pub mod prediction;
pub mod randomized;
pub mod streaming;
pub mod traits;

pub use lcp::Lcp;
pub use streaming::StreamingPolicy;
pub use traits::{FractionalAlgorithm, LookaheadAlgorithm, OnlineAlgorithm};
