//! Randomized rounding of fractional schedules (Section 4.1) and the
//! resulting 2-competitive randomized online algorithm.
//!
//! Given a fractional schedule `\bar X`, the rounding keeps the integral
//! state `x_t` in `{ floor(\bar x_t), ceil*(\bar x_t) }` where
//! `ceil*(x) = floor(x) + 1`, choosing transitions so that
//!
//! * `Pr[x_t = ceil*(\bar x_t)] = frac(\bar x_t)` (Lemma 18),
//! * the expected operating cost equals the fractional operating cost under
//!   the eq. 3 interpolation (Lemma 19),
//! * the expected switching cost equals the fractional switching cost
//!   (Lemma 20).
//!
//! Hence `E[cost] = cost(\bar X)`: feeding in a 2-competitive fractional
//! schedule yields a 2-competitive randomized integral algorithm
//! (Theorem 3), which is optimal (Theorem 8).

use crate::traits::{FractionalAlgorithm, OnlineAlgorithm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsdc_core::prelude::*;

/// `ceil*(x) = floor(x) + 1` — the paper's modified ceiling, which exceeds
/// `x` even at integers.
#[inline]
pub fn ceil_star(x: f64) -> f64 {
    x.floor() + 1.0
}

/// Online randomized rounding state machine (Section 4.1).
#[derive(Debug, Clone)]
pub struct Rounder<R: Rng> {
    rng: R,
    prev_frac: f64,
    prev_int: u32,
}

impl Rounder<StdRng> {
    /// Seeded rounder (deterministic runs for tests/benches).
    pub fn seeded(seed: u64) -> Self {
        Rounder {
            rng: StdRng::seed_from_u64(seed),
            prev_frac: 0.0,
            prev_int: 0,
        }
    }

    /// Capture the full rounder state — previous fractional/integral states
    /// plus the raw RNG state — so a restored rounder continues the exact
    /// random stream (streaming snapshot/restore).
    pub fn snapshot(&self) -> RounderSnapshot {
        RounderSnapshot {
            prev_frac: self.prev_frac,
            prev_int: self.prev_int,
            rng_state: self.rng.state().to_vec(),
        }
    }

    /// Rebuild from a [`Rounder::snapshot`].
    pub fn from_snapshot(s: &RounderSnapshot) -> Result<Self, rsdc_core::Error> {
        let state: [u64; 4] = s.rng_state.as_slice().try_into().map_err(|_| {
            rsdc_core::Error::InvalidParameter(format!(
                "rounder snapshot has {} RNG words, expected 4",
                s.rng_state.len()
            ))
        })?;
        Ok(Rounder {
            rng: StdRng::from_state(state),
            prev_frac: s.prev_frac,
            prev_int: s.prev_int,
        })
    }
}

/// Serializable state of a seeded [`Rounder`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RounderSnapshot {
    /// Previous fractional input.
    pub prev_frac: f64,
    /// Previous integral output.
    pub prev_int: u32,
    /// Raw xoshiro state words (always 4).
    pub rng_state: Vec<u64>,
}

impl<R: Rng> Rounder<R> {
    /// Rounder with an explicit RNG.
    pub fn with_rng(rng: R) -> Self {
        Rounder {
            rng,
            prev_frac: 0.0,
            prev_int: 0,
        }
    }

    /// Round the next fractional state to an integral one.
    pub fn round(&mut self, frac_state: f64) -> u32 {
        let xbar_t = frac_state.max(0.0);
        let lo = xbar_t.floor();
        let frac = xbar_t - lo;

        let next = if frac == 0.0 {
            // Integral target: Pr[upper] = frac = 0, so deterministic.
            lo as u32
        } else {
            let hi = lo + 1.0; // ceil*(xbar_t)
                               // Project the previous fractional state into [lo, hi].
            let xbar_prev_proj = self.prev_frac.clamp(lo, hi);
            let prev = self.prev_int as f64;
            if self.prev_frac <= xbar_t {
                // Increasing slot.
                if prev >= hi {
                    hi as u32
                } else {
                    // p_up = (xbar_t - xbar'_{t-1}) / (hi - xbar'_{t-1}).
                    let p_up = (xbar_t - xbar_prev_proj) / (hi - xbar_prev_proj);
                    if self.rng.gen_bool(p_up.clamp(0.0, 1.0)) {
                        hi as u32
                    } else {
                        lo as u32
                    }
                }
            } else {
                // Decreasing slot.
                if prev <= lo {
                    lo as u32
                } else {
                    // p_down = (xbar'_{t-1} - xbar_t) / (xbar'_{t-1} - lo).
                    let p_down = (xbar_prev_proj - xbar_t) / (xbar_prev_proj - lo);
                    if self.rng.gen_bool(p_down.clamp(0.0, 1.0)) {
                        lo as u32
                    } else {
                        hi as u32
                    }
                }
            }
        };

        self.prev_frac = xbar_t;
        self.prev_int = next;
        next
    }
}

/// Round an entire fractional schedule (offline use / experiments).
pub fn round_schedule<R: Rng>(rng: R, xs: &FracSchedule) -> Schedule {
    let mut r = Rounder::with_rng(rng);
    Schedule(xs.0.iter().map(|&x| r.round(x)).collect())
}

/// **Ablation only** — naive *independent* rounding: each slot goes up to
/// `ceil*` with probability `frac(x_t)` independently of the previous slot.
///
/// This preserves the per-slot marginals (so the expected *operating* cost
/// still equals the fractional one) but destroys the coupling Lemma 20
/// relies on: consecutive slots with the same fractional value flip
/// independently and pay switching cost the fractional schedule never
/// incurs. Experiment E15 quantifies the inflation; this is why the
/// paper's Section 4.1 transition rule exists.
pub fn round_schedule_independent<R: Rng>(mut rng: R, xs: &FracSchedule) -> Schedule {
    Schedule(
        xs.0.iter()
            .map(|&x| {
                let x = x.max(0.0);
                let lo = x.floor();
                let frac = x - lo;
                if frac > 0.0 && rng.gen_bool(frac.clamp(0.0, 1.0)) {
                    lo as u32 + 1
                } else {
                    lo as u32
                }
            })
            .collect(),
    )
}

/// The randomized online algorithm of Section 4: a fractional algorithm
/// (e.g. [`crate::fractional::HalfStep`] over the continuous extension)
/// composed with the randomized [`Rounder`].
pub struct RandomizedOnline<F: FractionalAlgorithm> {
    fractional: F,
    rounder: Rounder<StdRng>,
    m: u32,
}

impl<F: FractionalAlgorithm> RandomizedOnline<F> {
    /// Compose a fractional algorithm with a seeded rounder.
    pub fn new(fractional: F, m: u32, seed: u64) -> Self {
        Self {
            fractional,
            rounder: Rounder::seeded(seed),
            m,
        }
    }
}

impl<F: FractionalAlgorithm> OnlineAlgorithm for RandomizedOnline<F> {
    fn step(&mut self, f: &Cost) -> u32 {
        let frac = self.fractional.step(f);
        self.rounder.round(frac).min(self.m)
    }

    fn name(&self) -> String {
        format!("Randomized({})", self.fractional.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Empirical distribution check for Lemma 18 on a fixed fractional
    /// trajectory.
    fn marginals(xs: &[f64], trials: usize) -> Vec<f64> {
        let mut up_counts = vec![0usize; xs.len()];
        for s in 0..trials {
            let mut r = Rounder::seeded(s as u64);
            for (t, &x) in xs.iter().enumerate() {
                let v = r.round(x);
                if (v as f64 - ceil_star(x)).abs() < 0.5 && x.fract() != 0.0 {
                    up_counts[t] += 1;
                }
            }
        }
        up_counts
            .iter()
            .map(|&c| c as f64 / trials as f64)
            .collect()
    }

    #[test]
    fn lemma18_marginal_probabilities() {
        let xs = [0.3, 0.7, 0.7, 0.2, 1.6, 1.4, 0.5];
        let got = marginals(&xs, 20_000);
        for (t, (&x, &p)) in xs.iter().zip(&got).enumerate() {
            let want = x.fract();
            assert!(
                (p - want).abs() < 0.02,
                "slot {t}: Pr[upper] = {p}, want frac = {want}"
            );
        }
    }

    #[test]
    fn integral_states_are_deterministic() {
        let mut r = Rounder::seeded(7);
        assert_eq!(r.round(0.0), 0);
        assert_eq!(r.round(3.0), 3);
        assert_eq!(r.round(1.0), 1);
    }

    #[test]
    fn rounded_state_brackets_fraction() {
        let mut r = Rounder::seeded(42);
        for &x in &[0.4, 1.2, 2.9, 2.1, 0.6, 0.0, 4.5] {
            let v = r.round(x) as f64;
            assert!(
                (v - x.floor()).abs() < 1e-9 || (v - ceil_star(x)).abs() < 1e-9,
                "rounded {v} not in {{floor, ceil*}} of {x}"
            );
        }
    }

    #[test]
    fn monotone_fractional_rounds_monotone() {
        // While xbar increases, the integral state never decreases (the
        // algorithm only keeps or raises within increasing slots).
        for seed in 0..50u64 {
            let mut r = Rounder::seeded(seed);
            let mut prev = 0u32;
            for &x in &[0.2, 0.5, 0.9, 1.3, 1.8, 2.4, 3.3] {
                let v = r.round(x);
                assert!(v >= prev, "seed {seed}: {v} < {prev}");
                prev = v;
            }
        }
    }

    #[test]
    fn lemma20_expected_switching_cost() {
        // E[(x_t - x_{t-1})^+] must equal (xbar_t - xbar_{t-1})^+ per slot.
        let xs = [0.3, 0.8, 0.8, 0.1, 1.7, 2.2, 0.9];
        let trials = 40_000;
        let mut total_up = 0.0;
        for s in 0..trials {
            let mut r = Rounder::seeded(s as u64);
            let mut prev = 0u32;
            for &x in &xs {
                let v = r.round(x);
                total_up += v.saturating_sub(prev) as f64;
                prev = v;
            }
        }
        let got = total_up / trials as f64;
        let want: f64 = {
            let mut prev = 0.0;
            let mut acc = 0.0;
            for &x in &xs {
                acc += (x - prev).max(0.0);
                prev = x;
            }
            acc
        };
        assert!(
            (got - want).abs() < 0.03,
            "E[switching] = {got}, fractional = {want}"
        );
    }

    #[test]
    fn lemma19_expected_operating_cost() {
        let inst = Instance::new(
            4,
            2.0,
            vec![
                Cost::quadratic(1.0, 2.0, 0.0),
                Cost::abs(3.0, 1.0),
                Cost::quadratic(0.5, 3.0, 0.2),
            ],
        )
        .unwrap();
        let frac = FracSchedule(vec![1.4, 1.1, 2.6]);
        let trials = 40_000;
        let mut acc = 0.0;
        for s in 0..trials {
            let rng = StdRng::seed_from_u64(s as u64);
            let xs = round_schedule(rng, &frac);
            acc += operating_cost(&inst, &xs);
        }
        let got = acc / trials as f64;
        let want = frac_operating_cost(&inst, &frac, FracMode::Interpolate);
        assert!(
            (got - want).abs() < 0.05 * (1.0 + want),
            "E[operating] = {got}, fractional = {want}"
        );
    }

    #[test]
    fn expected_total_cost_matches_fractional() {
        // The headline identity E[C(X)] = C(\bar X) behind Theorem 3.
        let inst = Instance::new(
            3,
            1.5,
            vec![
                Cost::abs(2.0, 2.0),
                Cost::abs(1.0, 0.0),
                Cost::abs(3.0, 3.0),
                Cost::abs(0.5, 1.0),
            ],
        )
        .unwrap();
        let frac = FracSchedule(vec![1.7, 0.6, 2.3, 1.2]);
        let trials = 60_000;
        let mut acc = 0.0;
        for s in 0..trials {
            let rng = StdRng::seed_from_u64(s as u64);
            let xs = round_schedule(rng, &frac);
            acc += cost(&inst, &xs);
        }
        let got = acc / trials as f64;
        let want = frac_cost(&inst, &frac, FracMode::Interpolate);
        assert!(
            (got - want).abs() < 0.05 * (1.0 + want),
            "E[C] = {got} vs fractional {want}"
        );
    }

    #[test]
    fn independent_rounding_preserves_marginals_but_inflates_switching() {
        // A constant fractional schedule at 0.5: coupled rounding never
        // switches after the first slot; independent rounding flips a coin
        // per slot and pays ~T/4 expected power-ups.
        let xs = FracSchedule(vec![0.5; 200]);
        let trials = 2000;
        let (mut coupled_up, mut indep_up) = (0.0f64, 0.0f64);
        for s in 0..trials {
            let a = round_schedule(StdRng::seed_from_u64(s), &xs);
            let b = round_schedule_independent(StdRng::seed_from_u64(s), &xs);
            let ups = |sch: &Schedule| {
                let mut prev = 0u32;
                let mut acc = 0u64;
                for &x in &sch.0 {
                    acc += x.saturating_sub(prev) as u64;
                    prev = x;
                }
                acc as f64
            };
            coupled_up += ups(&a);
            indep_up += ups(&b);
        }
        coupled_up /= trials as f64;
        indep_up /= trials as f64;
        // Coupled: exactly the fractional power-up total, 0.5.
        assert!((coupled_up - 0.5).abs() < 0.05, "coupled {coupled_up}");
        // Independent: ~ T/4 = 50.
        assert!(indep_up > 30.0, "independent {indep_up} should thrash");
    }

    #[test]
    fn composed_online_algorithm_is_feasible() {
        use crate::fractional::{EvalMode, HalfStep};
        use crate::traits::run;
        let inst = Instance::new(
            4,
            2.0,
            (0..20)
                .map(|t| Cost::abs(0.5, (t % 5) as f64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let frac = HalfStep::new(4, 2.0, EvalMode::Interpolate);
        let mut algo = RandomizedOnline::new(frac, 4, 123);
        let xs = run(&mut algo, &inst);
        assert!(xs.is_feasible(&inst));
    }
}
