//! Online algorithms with a finite prediction window (Section 5.4).
//!
//! At time `t` such an algorithm sees `f_t, ..., f_{t+w}`. Theorem 10 shows
//! that a constant window does not improve the achievable competitive
//! ratio: the adversary dilates each function into `n*w` copies scaled by
//! `1/(n*w)`, making the window's extra knowledge vanishingly valuable.
//!
//! Two concrete lookahead strategies are provided:
//!
//! * [`RecedingHorizon`] — solve the offline problem on everything seen so
//!   far (prefix plus window) and play the state that solution assigns to
//!   the current slot. A strong, natural baseline (a.k.a. model-predictive
//!   control).
//! * [`LookaheadLcp`] — LCP whose bound tracker is fed the window functions
//!   before committing: it projects onto the bounds of time `t + w`
//!   computed from the known prefix, mirroring Lin et al.'s LCP(w).

use crate::bounds::BoundTracker;
use crate::traits::LookaheadAlgorithm;
use rsdc_core::prelude::*;
use rsdc_offline::restricted_dp::solve_restricted;

/// Receding-horizon control: replan offline on the full known prefix +
/// window each step and commit the current slot's state.
#[derive(Debug, Clone)]
pub struct RecedingHorizon {
    m: u32,
    beta: f64,
    seen: Vec<Cost>,
}

impl RecedingHorizon {
    /// New controller for `m` servers and power-up cost `beta`.
    pub fn new(m: u32, beta: f64) -> Self {
        Self {
            m,
            beta,
            seen: Vec::new(),
        }
    }
}

impl LookaheadAlgorithm for RecedingHorizon {
    fn step(&mut self, window: &[Cost]) -> u32 {
        assert!(!window.is_empty(), "window must contain the current slot");
        self.seen.push(window[0].clone());
        let t_now = self.seen.len();
        let mut all = self.seen.clone();
        all.extend_from_slice(&window[1..]);
        let inst = Instance::new(self.m, self.beta, all).expect("valid parameters");
        let sol = rsdc_offline::dp::solve(&inst);
        sol.schedule.0[t_now - 1]
    }

    fn name(&self) -> String {
        "RecedingHorizon".into()
    }
}

/// LCP with lookahead: the bounds are advanced through the window before
/// the projection, so the algorithm projects onto `[x^L_{t+w}, x^U_{t+w}]`.
#[derive(Debug, Clone)]
pub struct LookaheadLcp {
    tracker: BoundTracker,
    state: u32,
}

impl LookaheadLcp {
    /// New lookahead LCP.
    pub fn new(m: u32, beta: f64) -> Self {
        Self {
            tracker: BoundTracker::new(m, beta),
            state: 0,
        }
    }

    /// Capture full state (tracker + current state) for streaming snapshots.
    pub fn snapshot(&self) -> (crate::bounds::TrackerSnapshot, u32) {
        (self.tracker.snapshot(), self.state)
    }

    /// Rebuild from a [`LookaheadLcp::snapshot`].
    pub fn from_snapshot(
        tracker: &crate::bounds::TrackerSnapshot,
        state: u32,
    ) -> Result<Self, rsdc_core::Error> {
        Ok(Self {
            tracker: BoundTracker::from_snapshot(tracker)?,
            state,
        })
    }
}

impl LookaheadAlgorithm for LookaheadLcp {
    fn step(&mut self, window: &[Cost]) -> u32 {
        assert!(!window.is_empty());
        // Advance the persistent tracker by the current function only...
        self.tracker.step(&window[0]);
        // ...then peek through the window on a scratch copy.
        let mut peek = self.tracker.clone();
        for f in &window[1..] {
            peek.step(f);
        }
        let (lo, hi) = (peek.x_low(), peek.x_up());
        self.state = self.state.clamp(lo.min(hi), hi.max(lo));
        self.state
    }

    fn name(&self) -> String {
        "LCP(lookahead)".into()
    }
}

/// Solve the offline problem restricted to a fixed set of states per slot
/// (helper shared by tests exercising window dilation).
pub fn offline_on(m: u32, beta: f64, costs: &[Cost]) -> f64 {
    let inst = Instance::new(m, beta, costs.to_vec()).expect("valid parameters");
    let allowed: Vec<Vec<u32>> = (0..costs.len()).map(|_| (0..=m).collect()).collect();
    solve_restricted(&inst, &allowed).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{competitive_ratio, run_lookahead};

    fn spiky_instance() -> Instance {
        let costs: Vec<Cost> = (0..24)
            .map(|t| {
                let target = if t % 6 == 0 { 6.0 } else { 1.0 };
                Cost::abs(2.0, target)
            })
            .collect();
        Instance::new(8, 3.0, costs).unwrap()
    }

    #[test]
    fn full_lookahead_is_optimal() {
        // Window covering the whole horizon makes RecedingHorizon exactly
        // offline-optimal.
        let inst = spiky_instance();
        let w = inst.horizon();
        let mut rh = RecedingHorizon::new(8, 3.0);
        let xs = run_lookahead(&mut rh, &inst, w);
        let (alg, opt, ratio) = competitive_ratio(&inst, &xs);
        assert!(
            (alg - opt).abs() < 1e-9,
            "full lookahead must be optimal, ratio {ratio}"
        );
    }

    #[test]
    fn lookahead_helps_receding_horizon() {
        let inst = spiky_instance();
        let mut rh0 = RecedingHorizon::new(8, 3.0);
        let xs0 = run_lookahead(&mut rh0, &inst, 0);
        let mut rh4 = RecedingHorizon::new(8, 3.0);
        let xs4 = run_lookahead(&mut rh4, &inst, 4);
        let c0 = rsdc_core::schedule::cost(&inst, &xs0);
        let c4 = rsdc_core::schedule::cost(&inst, &xs4);
        assert!(
            c4 <= c0 + 1e-9,
            "lookahead should not hurt on this workload: {c4} vs {c0}"
        );
    }

    #[test]
    fn lookahead_lcp_feasible_and_competitive() {
        let inst = spiky_instance();
        for w in [0usize, 2, 6] {
            let mut a = LookaheadLcp::new(8, 3.0);
            let xs = run_lookahead(&mut a, &inst, w);
            assert!(xs.is_feasible(&inst));
            let (_, _, ratio) = competitive_ratio(&inst, &xs);
            assert!(ratio <= 3.0 + 1e-9, "w={w}: ratio {ratio}");
        }
    }

    #[test]
    fn zero_window_lcp_matches_plain_lcp() {
        use crate::lcp::Lcp;
        use crate::traits::run;
        let inst = spiky_instance();
        let mut a = LookaheadLcp::new(8, 3.0);
        let xs_look = run_lookahead(&mut a, &inst, 0);
        let mut b = Lcp::new(8, 3.0);
        let xs_plain = run(&mut b, &inst);
        assert_eq!(xs_look, xs_plain);
    }
}
