//! Online maintenance of the LCP bounds `x^L_tau` and `x^U_tau`
//! (Section 3.1).
//!
//! `\hat C^L_tau(x)` is the cheapest cost of serving `f_1..=f_tau` ending in
//! state `x` when switching cost is charged for powering **up** (eq. 11);
//! `\hat C^U_tau(x)` charges powering **down** instead (eq. 12). Both evolve
//! by the recursion
//!
//! ```text
//! \hat C_tau(x) = min_{x'} ( \hat C_{tau-1}(x') + switch(x', x) ) + f_tau(x)
//! ```
//!
//! which [`rsdc_offline::dp::relax`] / [`rsdc_offline::dp::relax_down`]
//! evaluate for all `x` in `O(m)`. The bounds are then
//!
//! * `x^L_tau` — the **smallest** minimizer of `\hat C^L_tau` (smallest
//!   final state of an optimal truncated schedule),
//! * `x^U_tau` — the **largest** minimizer of `\hat C^U_tau`.
//!
//! The tracker also exposes the structural facts the analysis rests on so
//! tests can assert them: both value functions are convex (Lemma 8), they
//! differ by exactly `beta * x` (Lemma 7), and `\hat C^L` has slope at most
//! `beta` up to `x^U` and at least `beta` after it (Lemma 9).

use rsdc_core::prelude::*;
use rsdc_offline::dp::{relax, relax_down};
use serde::{Deserialize, Serialize};

/// Incrementally maintained `\hat C^L`, `\hat C^U` and the derived bounds.
#[derive(Debug, Clone)]
pub struct BoundTracker {
    m: u32,
    beta: f64,
    tau: usize,
    c_low: Vec<f64>,
    c_up: Vec<f64>,
    scratch: Vec<f64>,
    parent: Vec<u32>,
    x_low: u32,
    x_up: u32,
}

impl BoundTracker {
    /// Start tracking for a data center with `m` servers and power-up cost
    /// `beta`. Before any [`step`](Self::step), the bounds are `0`.
    pub fn new(m: u32, beta: f64) -> Self {
        let m1 = m as usize + 1;
        // At tau = 0 the only reachable state is 0 (x_0 = 0): encode by
        // infinite cost elsewhere.
        let mut c_low = vec![f64::INFINITY; m1];
        c_low[0] = 0.0;
        let c_up = c_low.clone();
        Self {
            m,
            beta,
            tau: 0,
            c_low,
            c_up,
            scratch: vec![0.0; m1],
            parent: vec![0; m1],
            x_low: 0,
            x_up: 0,
        }
    }

    /// Incorporate the next cost function; `O(m)`.
    pub fn step(&mut self, f: &Cost) {
        self.tau += 1;

        relax(&self.c_low, self.beta, &mut self.scratch, &mut self.parent);
        for (x, v) in self.scratch.iter_mut().enumerate() {
            *v += f.eval(x as u32);
        }
        std::mem::swap(&mut self.c_low, &mut self.scratch);

        relax_down(&self.c_up, self.beta, &mut self.scratch, &mut self.parent);
        for (x, v) in self.scratch.iter_mut().enumerate() {
            *v += f.eval(x as u32);
        }
        std::mem::swap(&mut self.c_up, &mut self.scratch);

        self.x_low = smallest_argmin(&self.c_low);
        self.x_up = largest_argmin(&self.c_up);
    }

    /// `x^L_tau`: smallest final state of an optimal power-up-charged
    /// truncated schedule.
    pub fn x_low(&self) -> u32 {
        self.x_low
    }

    /// `x^U_tau`: largest final state of an optimal power-down-charged
    /// truncated schedule.
    pub fn x_up(&self) -> u32 {
        self.x_up
    }

    /// Number of steps consumed so far.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// `\hat C^L_tau(x)`.
    pub fn c_low(&self, x: u32) -> f64 {
        self.c_low[x as usize]
    }

    /// `\hat C^U_tau(x)`.
    pub fn c_up(&self, x: u32) -> f64 {
        self.c_up[x as usize]
    }

    /// Full `\hat C^L` vector (for diagnostics/tests).
    pub fn c_low_vec(&self) -> &[f64] {
        &self.c_low
    }

    /// Full `\hat C^U` vector (for diagnostics/tests).
    pub fn c_up_vec(&self) -> &[f64] {
        &self.c_up
    }

    /// Verify Lemma 7 (`\hat C^L(x) = \hat C^U(x) + beta x`), Lemma 8
    /// (convexity of both) and Lemma 9 (slope of `\hat C^L` at most `beta`
    /// up to `x^U`, at least `beta` above). Returns a description of the
    /// first violation, if any. Only meaningful after at least one step.
    pub fn check_lemmas(&self) -> Result<(), String> {
        let m1 = self.m as usize + 1;
        let scale = self
            .c_low
            .iter()
            .filter(|v| v.is_finite())
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        let tol = 1e-9 * scale;

        // Lemma 7.
        for x in 0..m1 {
            let (l, u) = (self.c_low[x], self.c_up[x]);
            if l.is_finite() != u.is_finite() {
                return Err(format!("lemma 7: finiteness mismatch at {x}"));
            }
            if l.is_finite() && (l - (u + self.beta * x as f64)).abs() > tol {
                return Err(format!(
                    "lemma 7 violated at x={x}: C^L={l}, C^U+bx={}",
                    u + self.beta * x as f64
                ));
            }
        }
        // Lemma 8: convexity (on the finite suffix).
        for (name, v) in [("C^L", &self.c_low), ("C^U", &self.c_up)] {
            let fin: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            for w in fin.windows(3) {
                if (w[1] - w[0]) > (w[2] - w[1]) + tol {
                    return Err(format!("lemma 8 violated for {name}: {w:?}"));
                }
            }
        }
        // Lemma 9.
        let xu = self.x_up as usize;
        if xu >= 1 && self.c_low[xu].is_finite() && self.c_low[xu - 1].is_finite() {
            let slope = self.c_low[xu] - self.c_low[xu - 1];
            if slope > self.beta + tol {
                return Err(format!("lemma 9: slope {slope} > beta before x^U"));
            }
        }
        if xu + 1 < m1 && self.c_low[xu + 1].is_finite() && self.c_low[xu].is_finite() {
            let slope = self.c_low[xu + 1] - self.c_low[xu];
            if slope < self.beta - tol {
                return Err(format!("lemma 9: slope {slope} < beta after x^U"));
            }
        }
        Ok(())
    }
}

/// Serializable full state of a [`BoundTracker`], used by the streaming
/// layer (`crate::streaming`) so tenants survive engine restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerSnapshot {
    /// Fleet size.
    pub m: u32,
    /// Power-up cost.
    pub beta: f64,
    /// Steps consumed.
    pub tau: u64,
    /// `\hat C^L` vector (non-finite entries encode unreachable states).
    pub c_low: Vec<f64>,
    /// `\hat C^U` vector.
    pub c_up: Vec<f64>,
    /// Current `x^L`.
    pub x_low: u32,
    /// Current `x^U`.
    pub x_up: u32,
}

impl BoundTracker {
    /// Capture the full tracker state.
    ///
    /// Unreachable states hold `+inf`, which plain JSON cannot carry;
    /// snapshots encode them as `f64::MAX` (no legitimate cost comes
    /// within a factor of 2 of it) so the vectors survive any JSON
    /// implementation, and [`BoundTracker::from_snapshot`] maps them back.
    pub fn snapshot(&self) -> TrackerSnapshot {
        let encode = |v: &[f64]| -> Vec<f64> {
            v.iter()
                .map(|&x| if x.is_finite() { x } else { f64::MAX })
                .collect()
        };
        TrackerSnapshot {
            m: self.m,
            beta: self.beta,
            tau: self.tau as u64,
            c_low: encode(&self.c_low),
            c_up: encode(&self.c_up),
            x_low: self.x_low,
            x_up: self.x_up,
        }
    }

    /// Rebuild a tracker from a [`TrackerSnapshot`].
    ///
    /// The `f64::MAX` sentinel (and any non-finite residue from a JSON
    /// round trip) is normalised back to `+inf` — the only non-finite
    /// value the tracker ever produces.
    pub fn from_snapshot(s: &TrackerSnapshot) -> Result<Self, Error> {
        let m1 = s.m as usize + 1;
        if s.c_low.len() != m1 || s.c_up.len() != m1 {
            return Err(Error::InvalidParameter(format!(
                "tracker snapshot has {} / {} states, expected {m1}",
                s.c_low.len(),
                s.c_up.len()
            )));
        }
        if !(s.beta.is_finite() && s.beta > 0.0) {
            return Err(Error::InvalidParameter(format!(
                "tracker snapshot beta {} invalid",
                s.beta
            )));
        }
        let sanitize = |v: &[f64]| -> Vec<f64> {
            v.iter()
                .map(|&x| {
                    if x.is_finite() && x < f64::MAX / 2.0 {
                        x
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        };
        Ok(Self {
            m: s.m,
            beta: s.beta,
            tau: s.tau as usize,
            c_low: sanitize(&s.c_low),
            c_up: sanitize(&s.c_up),
            scratch: vec![0.0; m1],
            parent: vec![0; m1],
            x_low: s.x_low.min(s.m),
            x_up: s.x_up.min(s.m),
        })
    }
}

fn smallest_argmin(v: &[f64]) -> u32 {
    let mut best = f64::INFINITY;
    let mut best_i = 0u32;
    for (i, &x) in v.iter().enumerate() {
        if x < best {
            best = x;
            best_i = i as u32;
        }
    }
    best_i
}

fn largest_argmin(v: &[f64]) -> u32 {
    let mut best = f64::INFINITY;
    let mut best_i = 0u32;
    for (i, &x) in v.iter().enumerate() {
        if x <= best {
            best = x;
            best_i = i as u32;
        }
    }
    best_i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_bounds_are_zero() {
        let b = BoundTracker::new(4, 1.0);
        assert_eq!(b.x_low(), 0);
        assert_eq!(b.x_up(), 0);
    }

    #[test]
    fn first_step_bounds() {
        // f_1 = 10*|x - 2|, beta = 1.
        // C^L(x) = f_1(x) + x; minimized at 2 -> x^L = 2.
        // C^U(x) = f_1(x) (power-down charged later); largest argmin = 2.
        let mut b = BoundTracker::new(4, 1.0);
        b.step(&Cost::abs(10.0, 2.0));
        assert_eq!(b.x_low(), 2);
        assert_eq!(b.x_up(), 2);
        assert!((b.c_low(2) - 2.0).abs() < 1e-12);
        assert!((b.c_up(2) - 0.0).abs() < 1e-12);
        b.check_lemmas().unwrap();
    }

    #[test]
    fn flat_cost_splits_bounds() {
        // A function indifferent between 1 and 3: x^L should take the
        // smallest optimal final state, x^U the largest.
        let f = Cost::table(vec![5.0, 1.0, 1.0, 1.0, 5.0]);
        let mut b = BoundTracker::new(4, 2.0);
        b.step(&f);
        // C^L(x) = f(x) + 2x: minimized at x = 1 -> x^L = 1.
        assert_eq!(b.x_low(), 1);
        // C^U(x) = f(x): largest argmin is 3.
        assert_eq!(b.x_up(), 3);
        b.check_lemmas().unwrap();
    }

    #[test]
    fn lemmas_hold_over_random_sequences() {
        // Deterministic pseudo-random sequence of convex functions.
        let mut b = BoundTracker::new(12, 1.7);
        for t in 0..60u32 {
            let center = ((t * 7 + 3) % 13) as f64;
            let slope = 0.3 + ((t * 5) % 4) as f64;
            let f = if t % 3 == 0 {
                Cost::quadratic(slope * 0.2, center, 0.1)
            } else {
                Cost::abs(slope, center)
            };
            b.step(&f);
            b.check_lemmas().unwrap_or_else(|e| panic!("step {t}: {e}"));
            assert!(b.x_low() <= b.x_up(), "Lemma 6 ordering via Lemma 7/9");
        }
    }

    #[test]
    fn x_low_matches_offline_truncated_optimum() {
        // x^L_tau is the smallest last state among optimal schedules of the
        // truncated instance; cross-check via offline DP cost.
        let costs = vec![
            Cost::abs(2.0, 3.0),
            Cost::abs(0.5, 1.0),
            Cost::abs(4.0, 5.0),
        ];
        let inst = Instance::new(6, 1.0, costs.clone()).unwrap();
        let mut b = BoundTracker::new(6, 1.0);
        for t in 1..=3 {
            b.step(inst.cost_fn(t));
            let prefix = inst.prefix(t);
            let opt = rsdc_offline::dp::solve_cost_only(&prefix);
            let min_cl = (0..=6).map(|x| b.c_low(x)).fold(f64::INFINITY, f64::min);
            assert!(
                (opt - min_cl).abs() < 1e-9,
                "truncated optimum {opt} vs min C^L {min_cl} at tau={t}"
            );
        }
    }

    #[test]
    fn restricted_model_infinite_states() {
        // Load constraint x >= 2 at slot 1.
        let f = Cost::load(
            2.0,
            Unit::Affine {
                base: 0.5,
                slope: 0.0,
            },
        );
        let mut b = BoundTracker::new(4, 1.0);
        b.step(&f);
        assert!(b.c_low(0).is_infinite());
        assert!(b.c_low(2).is_finite());
        assert!(b.x_low() >= 2);
        assert!(b.x_up() >= 2);
    }
}
