//! Lazy Capacity Provisioning for the discrete setting (Section 3).
//!
//! At each step the algorithm computes the bounds `x^L_tau <= x^U_tau` (see
//! [`crate::bounds`]) and lazily projects its previous state into the
//! interval:
//!
//! ```text
//! x^LCP_tau = [ x^LCP_{tau-1} ]^{x^U_tau}_{x^L_tau}     (eq. 13)
//! ```
//!
//! Theorem 2: LCP is 3-competitive, and by Theorem 4 no deterministic
//! online algorithm does better in the discrete setting.

use crate::bounds::BoundTracker;
use crate::traits::OnlineAlgorithm;
use rsdc_core::prelude::*;

/// The discrete Lazy Capacity Provisioning algorithm. `O(m)` per step.
#[derive(Debug, Clone)]
pub struct Lcp {
    tracker: BoundTracker,
    state: u32,
}

impl Lcp {
    /// LCP for a data center with `m` servers and power-up cost `beta`.
    pub fn new(m: u32, beta: f64) -> Self {
        Self {
            tracker: BoundTracker::new(m, beta),
            state: 0,
        }
    }

    /// Current state `x^LCP_tau`.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// The bound tracker (exposes `x^L`, `x^U` and the value functions).
    pub fn tracker(&self) -> &BoundTracker {
        &self.tracker
    }

    /// Capture the full algorithm state (tracker + current state) for the
    /// streaming layer's snapshot/restore protocol.
    pub fn snapshot(&self) -> (crate::bounds::TrackerSnapshot, u32) {
        (self.tracker.snapshot(), self.state)
    }

    /// Rebuild from a [`Lcp::snapshot`].
    pub fn from_snapshot(
        tracker: &crate::bounds::TrackerSnapshot,
        state: u32,
    ) -> Result<Self, rsdc_core::Error> {
        Ok(Self {
            tracker: BoundTracker::from_snapshot(tracker)?,
            state,
        })
    }
}

impl OnlineAlgorithm for Lcp {
    fn step(&mut self, f: &Cost) -> u32 {
        self.tracker.step(f);
        let lo = self.tracker.x_low();
        let hi = self.tracker.x_up();
        debug_assert!(lo <= hi, "x^L must not exceed x^U");
        self.state = self.state.clamp(lo, hi);
        self.state
    }

    fn name(&self) -> String {
        "LCP".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{competitive_ratio, run};
    use rsdc_offline::dp;

    #[test]
    fn follows_single_spike_lazily() {
        // Big spike at t=1, then silence. LCP should rise to the spike and
        // then descend only as the lower bound decays.
        let inst = Instance::new(
            8,
            1.0,
            vec![
                Cost::abs(100.0, 5.0),
                Cost::abs(0.1, 0.0),
                Cost::abs(0.1, 0.0),
            ],
        )
        .unwrap();
        let mut lcp = Lcp::new(8, 1.0);
        let xs = run(&mut lcp, &inst);
        assert_eq!(xs.0[0], 5, "must serve the spike");
        assert!(xs.0[1] <= 5 && xs.0[2] <= xs.0[1], "lazy descent");
    }

    #[test]
    fn stays_within_bounds_every_step() {
        let costs: Vec<Cost> = (0..40)
            .map(|t| Cost::abs(1.0 + (t % 3) as f64, ((t * 5 + 2) % 9) as f64))
            .collect();
        let inst = Instance::new(8, 2.0, costs).unwrap();
        let mut lcp = Lcp::new(8, 2.0);
        for t in 1..=inst.horizon() {
            let x = lcp.step(inst.cost_fn(t));
            assert!(lcp.tracker().x_low() <= x && x <= lcp.tracker().x_up());
        }
    }

    #[test]
    fn three_competitive_on_adversarial_flip_flop() {
        // phi_1 when at 0, phi_0 when at 1 — the Theorem 4 adversary played
        // against LCP for a fixed horizon.
        let eps = 0.05;
        let m = 1;
        let beta = 2.0;
        let mut lcp = Lcp::new(m, beta);
        let mut inst = Instance::empty(m, beta).unwrap();
        let mut state = 0u32;
        for _ in 0..2000 {
            let f = if state == 0 {
                Cost::phi1(eps)
            } else {
                Cost::phi0(eps)
            };
            inst.push(f.clone());
            state = lcp.step(&f);
        }
        let xs = {
            // Re-run to obtain the schedule (LCP is deterministic).
            let mut fresh = Lcp::new(m, beta);
            run(&mut fresh, &inst)
        };
        let (_, _, ratio) = competitive_ratio(&inst, &xs);
        assert!(ratio <= 3.0 + 1e-9, "LCP ratio {ratio} must be <= 3");
        // The adversary should push it close to 3 (within the finite-T,
        // finite-eps slack of Theorem 4).
        assert!(ratio > 2.0, "adversary should hurt LCP, got {ratio}");
    }

    #[test]
    fn ratio_bounded_by_three_on_varied_workloads() {
        for (seed, beta) in [(1u32, 0.5), (2, 2.0), (3, 8.0)] {
            let costs: Vec<Cost> = (0u32..120)
                .map(|t| {
                    let z = ((t.wrapping_mul(seed).wrapping_mul(2654435761u32)) >> 16) % 10;
                    Cost::abs(0.2 + (z % 4) as f64, (z % 7) as f64)
                })
                .collect();
            let inst = Instance::new(6, beta, costs).unwrap();
            let mut lcp = Lcp::new(6, beta);
            let xs = run(&mut lcp, &inst);
            let (alg, opt, ratio) = competitive_ratio(&inst, &xs);
            assert!(
                ratio <= 3.0 + 1e-9,
                "seed {seed}: ratio {ratio} (alg {alg}, opt {opt})"
            );
        }
    }

    #[test]
    fn optimal_when_workload_is_monotone() {
        // Steadily rising demand: LCP should match OPT exactly (it only
        // powers up, like OPT).
        let costs: Vec<Cost> = (0..8).map(|t| Cost::abs(10.0, t as f64)).collect();
        let inst = Instance::new(8, 1.0, costs).unwrap();
        let mut lcp = Lcp::new(8, 1.0);
        let xs = run(&mut lcp, &inst);
        let opt = dp::solve(&inst);
        assert!((cost(&inst, &xs) - opt.cost).abs() < 1e-9);
    }

    #[test]
    fn restricted_model_feasibility() {
        // Loads force x_t >= lambda_t; LCP must respect them via the
        // infinite-cost states.
        let unit = Unit::Server(ServerParams::default());
        let lambdas = vec![1.0, 3.0, 2.0, 4.0, 1.0];
        let r = RestrictedInstance::new(6, 2.0, unit, lambdas.clone()).unwrap();
        let g = r.to_general();
        let mut lcp = Lcp::new(6, 2.0);
        let xs = run(&mut lcp, &g);
        for (t, (&x, &l)) in xs.0.iter().zip(&lambdas).enumerate() {
            assert!(x as f64 >= l, "slot {}: x = {x} < lambda = {l}", t + 1);
        }
        assert!(cost(&g, &xs).is_finite());
    }

    #[test]
    fn zero_horizon_is_fine() {
        let mut lcp = Lcp::new(4, 1.0);
        assert_eq!(lcp.state(), 0);
        let inst = Instance::new(4, 1.0, vec![]).unwrap();
        let xs = run(&mut lcp, &inst);
        assert!(xs.is_empty());
    }
}
