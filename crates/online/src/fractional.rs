//! Fractional (continuous-setting) online algorithms.
//!
//! The randomized 2-competitive algorithm of Section 4 needs, as its first
//! stage, a 2-competitive *fractional* schedule for the continuous extension
//! of the instance. The paper obtains one from Bansal et al. \[7\] by
//! reference, without restating that algorithm. We implement:
//!
//! * [`HalfStep`] — the half-subgradient rule: move toward the minimizer of
//!   `f_t` by `(average slope)/beta`, never past the minimizer. On the
//!   two-point workloads (`phi_0`, `phi_1`, `beta = 2`) this moves by
//!   exactly `eps/2`, i.e. it *is* the reference algorithm `B` of
//!   Section 5.2.1, which the paper states is "equivalent to the algorithm
//!   of Bansal et al. for the special case". Its competitiveness on general
//!   workloads is measured empirically (experiment E6).
//! * [`MemorylessBalance`] — the memoryless algorithm of Bansal et al.:
//!   move toward the minimizer until the *movement* cost of this step
//!   equals the *hitting* cost at the stopping point (3-competitive in the
//!   continuous setting; best possible for memoryless algorithms).
//! * [`Obd`] — Online Balanced Descent (Chen et al.), included as a
//!   related-work baseline: move toward the minimizer until the hitting
//!   cost at the stopping point equals `gamma *` movement cost.
//!
//! All three treat the movement cost as `beta/2` per unit in each direction
//! (the Section 5 convention, equal in total to eq. 1 for closed
//! schedules), evaluate costs in a chosen [`FracMode`], and keep states in
//! `[0, m]`.

use crate::traits::FractionalAlgorithm;
use rsdc_core::prelude::*;

/// How a fractional algorithm reads the arriving cost function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Use the analytic formula (native continuous instances, Section 5).
    Analytic,
    /// Use the eq. 3 interpolation (continuous extension of a discrete
    /// instance, Section 4).
    Interpolate,
}

impl EvalMode {
    fn eval(self, f: &Cost, x: f64) -> f64 {
        match self {
            EvalMode::Analytic => f.eval_analytic(x),
            EvalMode::Interpolate => f.interpolate(x),
        }
    }

    /// Continuous minimizer of the convex function over `[0, m]` by ternary
    /// search (exact enough for piecewise-linear/quadratic shapes).
    fn argmin(self, f: &Cost, m: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = m;
        for _ in 0..200 {
            let a = lo + (hi - lo) / 3.0;
            let b = hi - (hi - lo) / 3.0;
            if self.eval(f, a) <= self.eval(f, b) {
                hi = b;
            } else {
                lo = a;
            }
        }
        0.5 * (lo + hi)
    }
}

/// The half-subgradient fractional algorithm (see module docs).
#[derive(Debug, Clone)]
pub struct HalfStep {
    m: f64,
    beta: f64,
    mode: EvalMode,
    state: f64,
}

impl HalfStep {
    /// New tracker over `[0, m]` with power-up cost `beta`.
    pub fn new(m: u32, beta: f64, mode: EvalMode) -> Self {
        Self {
            m: m as f64,
            beta,
            mode,
            state: 0.0,
        }
    }

    /// Current fractional state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Overwrite the current state (snapshot restore); clamped to `[0, m]`.
    pub fn set_state(&mut self, state: f64) {
        self.state = state.clamp(0.0, self.m);
    }
}

impl FractionalAlgorithm for HalfStep {
    fn step(&mut self, f: &Cost) -> f64 {
        let target = self.mode.argmin(f, self.m);
        let dist = (target - self.state).abs();
        if dist > 1e-15 {
            // Average slope of f between the current state and the
            // minimizer; for phi-shaped functions this is the slope.
            let drop = (self.mode.eval(f, self.state) - self.mode.eval(f, target)).max(0.0);
            let avg_slope = drop / dist;
            // Move by slope / beta, never past the minimizer. With the
            // symmetric convention (beta/2 per direction) this is the
            // "eps/2 per step at beta = 2" rule of algorithm B.
            let step = (avg_slope / self.beta).min(dist);
            self.state += step * (target - self.state).signum();
            self.state = self.state.clamp(0.0, self.m);
        }
        self.state
    }

    fn name(&self) -> String {
        "HalfStep(Bansal-style)".into()
    }
}

/// The memoryless "balance" algorithm of Bansal et al.: moves toward the
/// minimizer of `f_t`, stopping where this step's movement cost equals the
/// hitting cost at the stopping point (or at the minimizer if its hitting
/// cost still exceeds the movement).
#[derive(Debug, Clone)]
pub struct MemorylessBalance {
    m: f64,
    beta: f64,
    mode: EvalMode,
    state: f64,
}

impl MemorylessBalance {
    /// New tracker over `[0, m]` with power-up cost `beta`.
    pub fn new(m: u32, beta: f64, mode: EvalMode) -> Self {
        Self {
            m: m as f64,
            beta,
            mode,
            state: 0.0,
        }
    }

    /// Current fractional state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Overwrite the current state (snapshot restore); clamped to `[0, m]`.
    pub fn set_state(&mut self, state: f64) {
        self.state = state.clamp(0.0, self.m);
    }
}

impl FractionalAlgorithm for MemorylessBalance {
    fn step(&mut self, f: &Cost) -> f64 {
        self.state = balance_point(self.mode, f, self.state, self.m, self.beta / 2.0, 1.0);
        self.state
    }

    fn name(&self) -> String {
        "MemorylessBalance".into()
    }
}

/// Online Balanced Descent with balance parameter `gamma`: stop where the
/// hitting cost equals `gamma * movement cost`. `gamma = 1` recovers
/// [`MemorylessBalance`].
#[derive(Debug, Clone)]
pub struct Obd {
    m: f64,
    beta: f64,
    gamma: f64,
    mode: EvalMode,
    state: f64,
}

impl Obd {
    /// New tracker; `gamma > 0`.
    pub fn new(m: u32, beta: f64, gamma: f64, mode: EvalMode) -> Self {
        assert!(gamma > 0.0);
        Self {
            m: m as f64,
            beta,
            gamma,
            mode,
            state: 0.0,
        }
    }
}

impl FractionalAlgorithm for Obd {
    fn step(&mut self, f: &Cost) -> f64 {
        self.state = balance_point(
            self.mode,
            f,
            self.state,
            self.m,
            self.beta / 2.0,
            self.gamma,
        );
        self.state
    }

    fn name(&self) -> String {
        format!("OBD(gamma={})", self.gamma)
    }
}

/// Find the point `x` on the segment from `from` toward the minimizer of
/// `f` where `f(x) = gamma * move_rate * |x - from|`, or the minimizer if
/// the hitting cost never drops that low. Bisection on the convex
/// difference.
fn balance_point(mode: EvalMode, f: &Cost, from: f64, m: f64, move_rate: f64, gamma: f64) -> f64 {
    let target = mode.argmin(f, m);
    let h = |x: f64| mode.eval(f, x) - gamma * move_rate * (x - from).abs();
    if h(from) <= 0.0 {
        // Already cheap enough: don't move.
        return from;
    }
    if h(target) >= 0.0 {
        // Even at the minimizer the hitting cost dominates: go there.
        return target;
    }
    // h changes sign on [from, target]; h is continuous.
    let (mut lo, mut hi) = (from, target);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if h(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_frac;

    #[test]
    fn halfstep_matches_algorithm_b_on_phi_functions() {
        // Section 5.2.1: with beta = 2 and functions eps*|x|, eps*|1-x|,
        // algorithm B moves by exactly eps/2 toward the minimizer.
        let eps = 0.25;
        let mut b = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let x1 = b.step(&Cost::phi1(eps));
        assert!((x1 - eps / 2.0).abs() < 1e-9, "x1 = {x1}");
        let x2 = b.step(&Cost::phi1(eps));
        assert!((x2 - eps).abs() < 1e-9);
        let x3 = b.step(&Cost::phi0(eps));
        assert!((x3 - eps / 2.0).abs() < 1e-9);
    }

    #[test]
    fn halfstep_clamps_at_minimizer() {
        // A huge function should pull the state all the way to its
        // minimizer, not overshoot.
        let mut b = HalfStep::new(10, 1.0, EvalMode::Analytic);
        let x = b.step(&Cost::abs(1000.0, 7.0));
        assert!((x - 7.0).abs() < 1e-6);
    }

    #[test]
    fn halfstep_saturates_at_bounds() {
        let mut b = HalfStep::new(1, 2.0, EvalMode::Analytic);
        for _ in 0..100 {
            b.step(&Cost::phi1(0.5));
        }
        assert!(b.state() <= 1.0 + 1e-12);
        assert!((b.state() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memoryless_balances_hitting_and_movement() {
        // f = 4*|x - 5|, from 0, move rate beta/2 = 1, gamma = 1:
        // balance point x with 4*(5-x) = x -> x = 4.
        let mut a = MemorylessBalance::new(10, 2.0, EvalMode::Analytic);
        let x = a.step(&Cost::abs(4.0, 5.0));
        assert!((x - 4.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn memoryless_does_not_move_when_cheap() {
        let mut a = MemorylessBalance::new(10, 2.0, EvalMode::Analytic);
        a.step(&Cost::abs(4.0, 5.0));
        let before = a.state;
        // Zero function: staying is optimal.
        let x = a.step(&Cost::Zero);
        assert_eq!(x, before);
    }

    #[test]
    fn obd_gamma_interpolates() {
        // Larger gamma stops farther from the minimizer (hitting cost must
        // equal a larger multiple of movement).
        let f = Cost::abs(4.0, 5.0);
        let mut a1 = Obd::new(10, 2.0, 1.0, EvalMode::Analytic);
        let mut a4 = Obd::new(10, 2.0, 4.0, EvalMode::Analytic);
        let x1 = a1.step(&f);
        let x4 = a4.step(&f);
        assert!(x4 < x1, "gamma=4 stops earlier: {x4} vs {x1}");
    }

    #[test]
    fn interpolate_mode_sees_piecewise_costs() {
        // Table cost minimized at state 2; interpolation must find it.
        let f = Cost::table(vec![9.0, 4.0, 0.0, 4.0, 9.0]);
        let mut b = HalfStep::new(4, 0.5, EvalMode::Interpolate);
        let x = b.step(&f);
        assert!(x > 0.0 && x <= 2.0 + 1e-9);
    }

    #[test]
    fn run_frac_produces_feasible_schedule() {
        let inst = Instance::new(
            4,
            2.0,
            vec![Cost::phi1(0.3), Cost::phi0(0.3), Cost::phi1(0.3)],
        )
        .unwrap();
        let mut b = HalfStep::new(4, 2.0, EvalMode::Analytic);
        let xs = run_frac(&mut b, &inst);
        assert_eq!(xs.len(), 3);
        assert!(xs.0.iter().all(|&x| (0.0..=4.0).contains(&x)));
    }
}
