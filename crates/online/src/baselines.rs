//! Baseline online policies.
//!
//! None of these carry the paper's guarantees; they exist to calibrate the
//! experiments (how much do laziness and the bound structure actually buy?)
//! and as sanity baselines a practitioner would try first:
//!
//! * [`FollowTheMinimizer`] — jump to the cheapest state every slot. Pays
//!   unbounded switching on oscillating workloads (the E14 ablation
//!   quantifies the blow-up).
//! * [`Hysteresis`] — follow the minimizer only when it strays more than a
//!   dead-band from the current state; a common ad-hoc industrial policy.
//! * [`WorkFunction`] — the classic metrical-task-system Work Function
//!   Algorithm with symmetric movement metric `beta/2 * |x - y|`, included
//!   as the textbook competitor to LCP.

use crate::traits::OnlineAlgorithm;
use rsdc_core::prelude::*;

/// Jump to the (smallest) minimizer of every arriving cost function.
#[derive(Debug, Clone)]
pub struct FollowTheMinimizer {
    m: u32,
}

impl FollowTheMinimizer {
    /// Baseline over `0..=m`.
    pub fn new(m: u32) -> Self {
        Self { m }
    }
}

impl OnlineAlgorithm for FollowTheMinimizer {
    fn step(&mut self, f: &Cost) -> u32 {
        f.argmin_low(self.m)
    }
    fn name(&self) -> String {
        "FollowTheMinimizer".into()
    }
}

/// Follow the minimizer only when it is more than `band` away from the
/// current state; then jump all the way.
#[derive(Debug, Clone)]
pub struct Hysteresis {
    m: u32,
    band: u32,
    state: u32,
}

impl Hysteresis {
    /// Baseline with dead-band `band`.
    pub fn new(m: u32, band: u32) -> Self {
        Self { m, band, state: 0 }
    }

    /// Current state (streaming snapshot support).
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Overwrite the current state (snapshot restore).
    pub fn set_state(&mut self, state: u32) {
        self.state = state.min(self.m);
    }
}

impl OnlineAlgorithm for Hysteresis {
    fn step(&mut self, f: &Cost) -> u32 {
        let target = f.argmin_low(self.m);
        if target.abs_diff(self.state) > self.band {
            self.state = target;
        }
        self.state
    }
    fn name(&self) -> String {
        format!("Hysteresis(band={})", self.band)
    }
}

/// The Work Function Algorithm: maintain the symmetric-movement work
/// function
///
/// ```text
/// W_t(x) = min_{x'} ( W_{t-1}(x') + (beta/2) |x - x'| ) + f_t(x)
/// ```
///
/// and move to `x_t = argmin_x ( W_t(x) + (beta/2) |x - x_{t-1}| )`, ties
/// broken toward the previous state then toward smaller states.
#[derive(Debug, Clone)]
pub struct WorkFunction {
    half_beta: f64,
    w: Vec<f64>,
    scratch: Vec<f64>,
    state: u32,
}

impl WorkFunction {
    /// WFA over `0..=m` with power-up cost `beta` (movement metric
    /// `beta/2` per unit per direction).
    pub fn new(m: u32, beta: f64) -> Self {
        let m1 = m as usize + 1;
        let mut w = vec![f64::INFINITY; m1];
        w[0] = 0.0;
        Self {
            half_beta: beta / 2.0,
            w,
            scratch: vec![0.0; m1],
            state: 0,
        }
    }

    /// Current work-function vector (diagnostics).
    pub fn values(&self) -> &[f64] {
        &self.w
    }

    /// Symmetric in-place relaxation: `out[x] = min_{x'} (w[x'] + r|x-x'|)`.
    fn relax_symmetric(w: &[f64], r: f64, out: &mut [f64]) {
        let n = w.len();
        // Left-to-right pass.
        let mut best = f64::INFINITY;
        for x in 0..n {
            best = best.min(w[x] - r * x as f64);
            out[x] = best + r * x as f64;
        }
        // Right-to-left pass.
        let mut best = f64::INFINITY;
        for x in (0..n).rev() {
            best = best.min(w[x] + r * x as f64);
            let v = best - r * x as f64;
            if v < out[x] {
                out[x] = v;
            }
        }
    }
}

impl OnlineAlgorithm for WorkFunction {
    fn step(&mut self, f: &Cost) -> u32 {
        Self::relax_symmetric(&self.w, self.half_beta, &mut self.scratch);
        for (x, v) in self.scratch.iter_mut().enumerate() {
            *v += f.eval(x as u32);
        }
        std::mem::swap(&mut self.w, &mut self.scratch);

        // WFA move rule.
        let mut best = f64::INFINITY;
        let mut best_x = self.state;
        for (x, &wx) in self.w.iter().enumerate() {
            let v = wx + self.half_beta * (x as f64 - self.state as f64).abs();
            let better = v < best - 1e-15
                || (v <= best + 1e-15 && x as u32 == self.state && best_x != self.state);
            if better {
                best = v.min(best);
                best_x = x as u32;
            }
        }
        self.state = best_x;
        self.state
    }

    fn name(&self) -> String {
        "WorkFunction".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::Lcp;
    use crate::traits::{competitive_ratio, run};

    fn oscillating(eps: f64, t_len: usize) -> Instance {
        // The adversarial flavour: alternate targets 0 and 1 every slot.
        let costs = (0..t_len)
            .map(|t| {
                if t % 2 == 0 {
                    Cost::phi1(eps)
                } else {
                    Cost::phi0(eps)
                }
            })
            .collect();
        Instance::new(1, 2.0, costs).unwrap()
    }

    #[test]
    fn follow_minimizer_thrashes() {
        let inst = oscillating(0.01, 400);
        let mut ftm = FollowTheMinimizer::new(1);
        let xs = run(&mut ftm, &inst);
        let (_, _, ratio) = competitive_ratio(&inst, &xs);
        // It flips every slot: ~200 power-ups at beta = 2 vs OPT ~ 4eps*T/2.
        assert!(ratio > 20.0, "greedy should blow up, got {ratio}");
    }

    #[test]
    fn lcp_beats_greedy_on_oscillation() {
        let inst = oscillating(0.01, 400);
        let mut ftm = FollowTheMinimizer::new(1);
        let greedy_cost = cost(&inst, &run(&mut ftm, &inst));
        let mut lcp = Lcp::new(1, 2.0);
        let lcp_cost = cost(&inst, &run(&mut lcp, &inst));
        assert!(lcp_cost < greedy_cost / 10.0);
    }

    #[test]
    fn hysteresis_suppresses_small_oscillation() {
        let inst = oscillating(0.01, 400);
        let mut h = Hysteresis::new(1, 1);
        let xs = run(&mut h, &inst);
        // Band 1 on a 0/1 problem: never moves.
        assert!(xs.0.iter().all(|&x| x == 0));
    }

    #[test]
    fn hysteresis_follows_large_shifts() {
        let costs = vec![
            Cost::abs(5.0, 6.0),
            Cost::abs(5.0, 6.0),
            Cost::abs(5.0, 0.0),
        ];
        let inst = Instance::new(8, 1.0, costs).unwrap();
        let mut h = Hysteresis::new(8, 2);
        let xs = run(&mut h, &inst);
        assert_eq!(xs.0[0], 6);
        assert_eq!(xs.0[2], 0);
    }

    #[test]
    fn work_function_is_finite_and_feasible() {
        let costs: Vec<Cost> = (0..60)
            .map(|t| Cost::abs(1.0, 2.0 + 2.0 * ((t as f64) * 0.5).sin()))
            .collect();
        let inst = Instance::new(5, 2.0, costs).unwrap();
        let mut wfa = WorkFunction::new(5, 2.0);
        let xs = run(&mut wfa, &inst);
        assert!(xs.is_feasible(&inst));
        let (_, _, ratio) = competitive_ratio(&inst, &xs);
        assert!(ratio.is_finite());
        // WFA is a serious algorithm: it should not blow up here.
        assert!(ratio < 4.0, "WFA ratio {ratio}");
    }

    #[test]
    fn work_function_minimum_tracks_offline_prefix_cost() {
        // min_x W_t(x) <= prefix optimum under eq. 1 conventions plus the
        // at-most-beta/2-per-unit discrepancy; sanity: it is finite and
        // non-decreasing over time.
        let costs: Vec<Cost> = (0..20).map(|t| Cost::abs(1.0, (t % 4) as f64)).collect();
        let inst = Instance::new(4, 2.0, costs).unwrap();
        let mut wfa = WorkFunction::new(4, 2.0);
        let mut prev_min = 0.0f64;
        for t in 1..=inst.horizon() {
            rsdc_core::cost::Cost::eval(inst.cost_fn(t), 0); // touch
            let _ = OnlineAlgorithm::step(&mut wfa, inst.cost_fn(t));
            let min_w = wfa.values().iter().copied().fold(f64::INFINITY, f64::min);
            assert!(min_w.is_finite());
            assert!(min_w >= prev_min - 1e-9, "work function must grow");
            prev_min = min_w;
        }
    }

    #[test]
    fn relax_symmetric_matches_naive() {
        let w = vec![3.0, 0.5, 7.0, 2.0];
        let mut out = vec![0.0; 4];
        WorkFunction::relax_symmetric(&w, 1.5, &mut out);
        for (x, &got) in out.iter().enumerate() {
            let naive = (0..4)
                .map(|xp| w[xp] + 1.5 * (x as f64 - xp as f64).abs())
                .fold(f64::INFINITY, f64::min);
            assert!((got - naive).abs() < 1e-12, "x={x}");
        }
    }
}
