//! Resumable, object-safe streaming wrappers over the online algorithms.
//!
//! The batch runners in [`crate::traits`] consume a complete [`Instance`];
//! a long-lived service instead sees an *unbounded* stream of cost
//! functions and must be able to checkpoint and resume mid-stream. This
//! module adapts every policy family to that shape behind one object-safe
//! trait, [`StreamingPolicy`]:
//!
//! * **ingest** — feed the next cost function; committed states come back
//!   through an out-buffer because lookahead policies emit them with a lag;
//! * **finish** — end-of-stream: flush states still held back by lookahead;
//! * **snapshot / restore** — capture and re-install the *complete*
//!   mutable state (bound-tracker value functions, fractional states,
//!   rounder RNG words, buffered windows) as a [`serde::Value`] tree, so a
//!   restored policy continues **bit-identically** — including the
//!   randomized policies, whose RNG state rides along.
//!
//! Equivalence guarantees (checked by the cross-crate differential tests):
//! feeding a trace through a wrapper one event at a time, with any number
//! of snapshot/restore interruptions, produces exactly the schedule the
//! corresponding batch runner produces on the equivalent [`Instance`].

use crate::baselines::{FollowTheMinimizer, Hysteresis};
use crate::bounds::TrackerSnapshot;
use crate::flcp::GridLcp;
use crate::fractional::{EvalMode, HalfStep, MemorylessBalance};
use crate::lcp::Lcp;
use crate::prediction::LookaheadLcp;
use crate::randomized::{Rounder, RounderSnapshot};
use crate::traits::{FractionalAlgorithm, LookaheadAlgorithm, OnlineAlgorithm};
use rand::rngs::StdRng;
use rsdc_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Errors raised by snapshot/restore.
pub type StreamError = rsdc_core::Error;

fn bad_snapshot(what: &str) -> StreamError {
    rsdc_core::Error::InvalidParameter(format!("incompatible snapshot: {what}"))
}

/// An online policy adapted to unbounded streams with checkpointing.
///
/// Object-safe: engines hold tenants as `Box<dyn StreamingPolicy>`.
///
/// The contract every implementation upholds (and the differential tests
/// enforce): (1) streamed output equals the corresponding batch runner's
/// on the equivalent instance; (2) `restore(snapshot())` on a same-config
/// receiver continues **bit-identically** — including RNG state, so even
/// randomized policies survive checkpoints exactly; (3) `restore` rejects
/// snapshots from a differently-configured policy instead of silently
/// corrupting state. Heterogeneous (vector-state) tenants stream through
/// the parallel `rsdc_hetero::HeteroStream` shape, which upholds the same
/// three guarantees with the DP frontier as its snapshot.
pub trait StreamingPolicy: Send {
    /// Human-readable policy name.
    fn name(&self) -> String;

    /// Feed the next cost function; newly committed states are appended to
    /// `out` (usually exactly one; zero while a lookahead window fills).
    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>);

    /// Signal end-of-stream and flush any states still held back.
    fn finish(&mut self, out: &mut Vec<u32>);

    /// Capture the complete mutable state.
    fn snapshot(&self) -> serde::Value;

    /// Re-install a previously captured state. The receiver must have been
    /// built with the same configuration (`m`, `beta`, policy parameters).
    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), StreamError>;
}

fn decode<T: Deserialize>(v: &serde::Value, what: &str) -> Result<T, StreamError> {
    T::from_value(v).map_err(|e| bad_snapshot(&format!("{what}: {e}")))
}

// ------------------------------------------------------------------- LCP

/// Streaming discrete LCP ([`Lcp`]): one state per ingested cost.
pub struct StreamLcp {
    m: u32,
    beta: f64,
    inner: Lcp,
}

/// Serializable state of [`StreamLcp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LcpSnapshot {
    /// Tracker state.
    pub tracker: TrackerSnapshot,
    /// Committed state `x^LCP`.
    pub state: u32,
}

impl StreamLcp {
    /// Streaming LCP over `m` servers with power-up cost `beta`.
    pub fn new(m: u32, beta: f64) -> Self {
        Self {
            m,
            beta,
            inner: Lcp::new(m, beta),
        }
    }
}

impl StreamingPolicy for StreamLcp {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>) {
        out.push(self.inner.step(f).min(self.m));
    }

    fn finish(&mut self, _out: &mut Vec<u32>) {}

    fn snapshot(&self) -> serde::Value {
        let (tracker, state) = self.inner.snapshot();
        LcpSnapshot { tracker, state }.to_value()
    }

    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), StreamError> {
        let s: LcpSnapshot = decode(snapshot, "LCP")?;
        if s.tracker.m != self.m || s.tracker.beta != self.beta {
            return Err(bad_snapshot("LCP snapshot m/beta mismatch"));
        }
        self.inner = Lcp::from_snapshot(&s.tracker, s.state)?;
        Ok(())
    }
}

// --------------------------------------------- fractional + rounding

/// Fractional algorithms that can expose and re-install their full state.
///
/// Implemented by [`HalfStep`], [`MemorylessBalance`] and [`GridLcp`]; the
/// [`StreamRounded`] wrapper composes any of them with the Section 4
/// randomized [`Rounder`] into an integral streaming policy.
pub trait ResumableFractional: FractionalAlgorithm + Send {
    /// Capture the algorithm's mutable state.
    fn frac_snapshot(&self) -> serde::Value;

    /// Re-install a captured state.
    fn frac_restore(&mut self, v: &serde::Value) -> Result<(), StreamError>;
}

impl ResumableFractional for HalfStep {
    fn frac_snapshot(&self) -> serde::Value {
        self.state().to_value()
    }

    fn frac_restore(&mut self, v: &serde::Value) -> Result<(), StreamError> {
        self.set_state(decode::<f64>(v, "HalfStep state")?);
        Ok(())
    }
}

impl ResumableFractional for MemorylessBalance {
    fn frac_snapshot(&self) -> serde::Value {
        self.state().to_value()
    }

    fn frac_restore(&mut self, v: &serde::Value) -> Result<(), StreamError> {
        self.set_state(decode::<f64>(v, "MemorylessBalance state")?);
        Ok(())
    }
}

/// Serializable state of a [`GridLcp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridLcpSnapshot {
    /// Tracker over the fine grid.
    pub tracker: TrackerSnapshot,
    /// State in grid units.
    pub state: u32,
}

impl ResumableFractional for GridLcp {
    fn frac_snapshot(&self) -> serde::Value {
        let (tracker, state) = self.snapshot();
        GridLcpSnapshot { tracker, state }.to_value()
    }

    fn frac_restore(&mut self, v: &serde::Value) -> Result<(), StreamError> {
        let s: GridLcpSnapshot = decode(v, "GridLcp")?;
        *self = GridLcp::from_snapshot(self.m(), self.k(), &s.tracker, s.state)?;
        Ok(())
    }
}

/// A fractional policy composed with the randomized rounding of Section 4,
/// exactly mirroring [`crate::randomized::RandomizedOnline`] step for step
/// (including the final `min(m)` clamp), so streamed output is
/// bit-identical to the batch runner for equal seeds.
pub struct StreamRounded<F: ResumableFractional> {
    fractional: F,
    rounder: Rounder<StdRng>,
    m: u32,
    label: String,
}

/// Serializable state of [`StreamRounded`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundedSnapshot {
    /// Inner fractional policy state (policy-specific layout).
    pub fractional: serde::Value,
    /// Rounder state including RNG words.
    pub rounder: RounderSnapshot,
}

impl<F: ResumableFractional> StreamRounded<F> {
    /// Compose `fractional` with a seeded rounder over `0..=m`.
    pub fn new(fractional: F, m: u32, seed: u64) -> Self {
        let label = format!("Randomized({})", fractional.name());
        Self {
            fractional,
            rounder: Rounder::seeded(seed),
            m,
            label,
        }
    }
}

impl<F: ResumableFractional> StreamingPolicy for StreamRounded<F> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>) {
        let frac = self.fractional.step(f);
        out.push(self.rounder.round(frac).min(self.m));
    }

    fn finish(&mut self, _out: &mut Vec<u32>) {}

    fn snapshot(&self) -> serde::Value {
        RoundedSnapshot {
            fractional: self.fractional.frac_snapshot(),
            rounder: self.rounder.snapshot(),
        }
        .to_value()
    }

    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), StreamError> {
        let s: RoundedSnapshot = decode(snapshot, "StreamRounded")?;
        self.fractional.frac_restore(&s.fractional)?;
        self.rounder = Rounder::from_snapshot(&s.rounder)?;
        Ok(())
    }
}

// ------------------------------------------------------------ lookahead

/// Streaming lookahead: buffers up to `window` future costs and commits
/// slot `t` once `f_{t+window}` arrives (or at [`StreamingPolicy::finish`],
/// where the window shrinks exactly like
/// [`crate::traits::run_lookahead`] near the horizon).
pub struct StreamLookahead {
    m: u32,
    window: usize,
    inner: LookaheadLcp,
    buf: VecDeque<Cost>,
}

/// Serializable state of [`StreamLookahead`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LookaheadSnapshot {
    /// Tracker state.
    pub tracker: TrackerSnapshot,
    /// Committed state.
    pub state: u32,
    /// Buffered, not-yet-committed window costs (oldest first).
    pub buffered: Vec<Cost>,
}

impl StreamLookahead {
    /// Streaming [`LookaheadLcp`] with a `window`-slot prediction window.
    pub fn new(m: u32, beta: f64, window: usize) -> Self {
        Self {
            m,
            window,
            inner: LookaheadLcp::new(m, beta),
            buf: VecDeque::new(),
        }
    }

    fn commit_front(&mut self, out: &mut Vec<u32>) {
        let window: Vec<Cost> = self.buf.iter().cloned().collect();
        let x = self.inner.step(&window).min(self.m);
        self.buf.pop_front();
        out.push(x);
    }
}

impl StreamingPolicy for StreamLookahead {
    fn name(&self) -> String {
        format!("LCP(lookahead,w={})", self.window)
    }

    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>) {
        self.buf.push_back(f.clone());
        if self.buf.len() == self.window + 1 {
            self.commit_front(out);
        }
    }

    fn finish(&mut self, out: &mut Vec<u32>) {
        while !self.buf.is_empty() {
            self.commit_front(out);
        }
    }

    fn snapshot(&self) -> serde::Value {
        let (tracker, state) = self.inner.snapshot();
        LookaheadSnapshot {
            tracker,
            state,
            buffered: self.buf.iter().cloned().collect(),
        }
        .to_value()
    }

    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), StreamError> {
        let s: LookaheadSnapshot = decode(snapshot, "StreamLookahead")?;
        if s.buffered.len() > self.window + 1 {
            return Err(bad_snapshot("lookahead buffer exceeds window"));
        }
        self.inner = LookaheadLcp::from_snapshot(&s.tracker, s.state)?;
        self.buf = s.buffered.into_iter().collect();
        Ok(())
    }
}

// ------------------------------------------------------------- baselines

/// Streaming [`FollowTheMinimizer`] (stateless between steps).
pub struct StreamFollowMin {
    m: u32,
    inner: FollowTheMinimizer,
}

impl StreamFollowMin {
    /// Streaming follow-the-minimizer over `0..=m`.
    pub fn new(m: u32) -> Self {
        Self {
            m,
            inner: FollowTheMinimizer::new(m),
        }
    }
}

impl StreamingPolicy for StreamFollowMin {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>) {
        out.push(self.inner.step(f).min(self.m));
    }

    fn finish(&mut self, _out: &mut Vec<u32>) {}

    fn snapshot(&self) -> serde::Value {
        serde::Value::Null
    }

    fn restore(&mut self, _snapshot: &serde::Value) -> Result<(), StreamError> {
        Ok(())
    }
}

/// Streaming [`Hysteresis`] baseline.
pub struct StreamHysteresis {
    m: u32,
    inner: Hysteresis,
}

impl StreamHysteresis {
    /// Streaming hysteresis with dead-band `band`.
    pub fn new(m: u32, band: u32) -> Self {
        Self {
            m,
            inner: Hysteresis::new(m, band),
        }
    }
}

impl StreamingPolicy for StreamHysteresis {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn ingest(&mut self, f: &Cost, out: &mut Vec<u32>) {
        out.push(self.inner.step(f).min(self.m));
    }

    fn finish(&mut self, _out: &mut Vec<u32>) {}

    fn snapshot(&self) -> serde::Value {
        self.inner.state().to_value()
    }

    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), StreamError> {
        self.inner
            .set_state(decode::<u32>(snapshot, "Hysteresis state")?);
        Ok(())
    }
}

/// Convenience constructors matching the CLI's policy names.
impl StreamRounded<HalfStep> {
    /// The Section 4 randomized algorithm over the interpolated extension —
    /// the streaming twin of the CLI's `randomized` policy.
    pub fn halfstep(m: u32, beta: f64, seed: u64) -> Self {
        StreamRounded::new(HalfStep::new(m, beta, EvalMode::Interpolate), m, seed)
    }
}

impl StreamRounded<GridLcp> {
    /// Fractional LCP on a `1/k` grid, rounded — "FLCP-rounded".
    pub fn flcp(m: u32, beta: f64, k: u32, seed: u64) -> Self {
        StreamRounded::new(GridLcp::new(m, beta, k), m, seed)
    }
}

impl StreamRounded<MemorylessBalance> {
    /// Memoryless balance, rounded.
    pub fn memoryless(m: u32, beta: f64, seed: u64) -> Self {
        StreamRounded::new(
            MemorylessBalance::new(m, beta, EvalMode::Interpolate),
            m,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomized::RandomizedOnline;
    use crate::traits::{run, run_lookahead};

    fn costs(n: usize) -> Vec<Cost> {
        (0..n)
            .map(|t| Cost::abs(0.5 + (t % 3) as f64, ((t * 7 + 2) % 9) as f64))
            .collect()
    }

    fn stream_all(p: &mut dyn StreamingPolicy, fs: &[Cost]) -> Vec<u32> {
        let mut out = Vec::new();
        for f in fs {
            p.ingest(f, &mut out);
        }
        p.finish(&mut out);
        out
    }

    #[test]
    fn stream_lcp_matches_batch_run() {
        let fs = costs(60);
        let inst = Instance::new(8, 2.0, fs.clone()).unwrap();
        let batch = run(&mut Lcp::new(8, 2.0), &inst);
        let mut s = StreamLcp::new(8, 2.0);
        assert_eq!(stream_all(&mut s, &fs), batch.0);
    }

    #[test]
    fn stream_rounded_matches_randomized_online() {
        let fs = costs(50);
        let inst = Instance::new(6, 1.5, fs.clone()).unwrap();
        let mut batch_alg =
            RandomizedOnline::new(HalfStep::new(6, 1.5, EvalMode::Interpolate), 6, 99);
        let batch = run(&mut batch_alg, &inst);
        let mut s = StreamRounded::halfstep(6, 1.5, 99);
        assert_eq!(stream_all(&mut s, &fs), batch.0);
    }

    #[test]
    fn stream_lookahead_matches_run_lookahead() {
        let fs = costs(31);
        let inst = Instance::new(8, 2.0, fs.clone()).unwrap();
        for w in [0usize, 1, 3, 7] {
            let batch = run_lookahead(&mut LookaheadLcp::new(8, 2.0), &inst, w);
            let mut s = StreamLookahead::new(8, 2.0, w);
            assert_eq!(stream_all(&mut s, &fs), batch.0, "window {w}");
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let fs = costs(40);
        // Policies under test, paired with fresh twins restored mid-stream.
        type Builder = Box<dyn Fn() -> Box<dyn StreamingPolicy>>;
        let builders: Vec<(&str, Builder)> = vec![
            ("lcp", Box::new(|| Box::new(StreamLcp::new(7, 2.5)))),
            (
                "halfstep",
                Box::new(|| Box::new(StreamRounded::halfstep(7, 2.5, 5))),
            ),
            (
                "flcp",
                Box::new(|| Box::new(StreamRounded::flcp(7, 2.5, 3, 5))),
            ),
            (
                "memoryless",
                Box::new(|| Box::new(StreamRounded::memoryless(7, 2.5, 5))),
            ),
            (
                "lookahead",
                Box::new(|| Box::new(StreamLookahead::new(7, 2.5, 2))),
            ),
            (
                "hysteresis",
                Box::new(|| Box::new(StreamHysteresis::new(7, 1))),
            ),
        ];
        for (name, make) in &builders {
            let mut uninterrupted = make();
            let full = stream_all(uninterrupted.as_mut(), &fs);

            let mut first = make();
            let mut out = Vec::new();
            for f in &fs[..17] {
                first.ingest(f, &mut out);
            }
            let snap = first.snapshot();
            drop(first);
            let mut resumed = make();
            resumed.restore(&snap).unwrap();
            for f in &fs[17..] {
                resumed.ingest(f, &mut out);
            }
            resumed.finish(&mut out);
            assert_eq!(out, full, "policy {name}");
        }
    }

    #[test]
    fn snapshot_survives_json_text() {
        let fs = costs(25);
        let mut p = StreamRounded::flcp(5, 2.0, 2, 11);
        let mut out = Vec::new();
        for f in &fs[..10] {
            p.ingest(f, &mut out);
        }
        let text = serde_json::to_string(&p.snapshot()).unwrap();
        let snap: serde::Value = serde_json::from_str(&text).unwrap();
        let mut q = StreamRounded::flcp(5, 2.0, 2, 0);
        q.restore(&snap).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for f in &fs[10..] {
            p.ingest(f, &mut a);
            q.ingest(f, &mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut a = StreamLcp::new(4, 1.0);
        let mut out = Vec::new();
        a.ingest(&Cost::abs(1.0, 2.0), &mut out);
        let snap = a.snapshot();
        let mut b = StreamLcp::new(8, 1.0);
        assert!(b.restore(&snap).is_err());
        let mut c = StreamLcp::new(4, 2.0);
        assert!(c.restore(&snap).is_err());
    }
}
