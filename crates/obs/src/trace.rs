//! Bounded ring-buffer trace of structured control-plane events.
//!
//! Control-plane decisions (autoscale bound crossings, rebalance fences,
//! recovery phases, admission windows) are rare but ordering-sensitive:
//! debugging a flapping policy or a torn migration needs the *sequence* of
//! decisions, not rates. The [`TraceBuffer`] keeps the last N events with
//! globally monotonic sequence numbers; overwriting old events never
//! renumbers survivors, so gaps in `seq` reveal exactly how much history
//! the ring dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A field value in a trace event. Deliberately serde-free; the engine's
/// wire layer converts to JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (LCP bounds, costs).
    F64(f64),
    /// String (tenant ids, reasons).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured control-plane event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Globally monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// The engine's logical clock tick when the event was recorded.
    pub tick: u64,
    /// Event kind, e.g. `autoscale_decision` or `rebalance_fence`.
    pub kind: &'static str,
    /// Structured payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

struct TraceInner {
    enabled: bool,
    capacity: usize,
    seq: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

/// A bounded ring of [`TraceEvent`]s. Cheap to clone (an `Arc`). Disabled
/// buffers allocate nothing and record nothing.
#[derive(Clone)]
pub struct TraceBuffer {
    inner: Arc<TraceInner>,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events. `enabled = false` makes
    /// [`record`](TraceBuffer::record) a no-op.
    pub fn new(enabled: bool, capacity: usize) -> TraceBuffer {
        TraceBuffer {
            inner: Arc::new(TraceInner {
                enabled,
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                events: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Whether this buffer records events.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Append an event, evicting the oldest when full. Returns the
    /// assigned sequence number (`None` when disabled).
    pub fn record(
        &self,
        tick: u64,
        kind: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Option<u64> {
        let inner = &self.inner;
        if !inner.enabled {
            return None;
        }
        let mut events = inner.events.lock().expect("trace poisoned");
        // Seq is assigned under the lock so buffer order == seq order.
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        if events.len() == inner.capacity {
            events.pop_front();
        }
        events.push_back(TraceEvent {
            seq,
            tick,
            kind,
            fields,
        });
        Some(seq)
    }

    /// The retained events, oldest first. `last` limits to the newest N.
    pub fn events(&self, last: Option<usize>) -> Vec<TraceEvent> {
        let events = self.inner.events.lock().expect("trace poisoned");
        let skip = match last {
            Some(n) => events.len().saturating_sub(n),
            None => 0,
        };
        events.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (== next sequence number).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_monotonic() {
        let t = TraceBuffer::new(true, 3);
        for i in 0..5u64 {
            let seq = t.record(i, "e", vec![("i", i.into())]).unwrap();
            assert_eq!(seq, i);
        }
        let events = t.events(None);
        assert_eq!(events.len(), 3);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(t.recorded(), 5);
        // `last` trims from the oldest side.
        let newest = t.events(Some(2));
        assert_eq!(newest[0].seq, 3);
        assert_eq!(newest[1].seq, 4);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let t = TraceBuffer::new(false, 8);
        assert_eq!(t.record(0, "e", vec![]), None);
        assert!(t.events(None).is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn fields_round_trip() {
        let t = TraceBuffer::new(true, 4);
        t.record(
            7,
            "autoscale_decision",
            vec![
                ("lower", 1.5f64.into()),
                ("target", 3usize.into()),
                ("applied", true.into()),
                ("reason", "bound_crossed".into()),
            ],
        );
        let e = &t.events(None)[0];
        assert_eq!(e.tick, 7);
        assert_eq!(e.kind, "autoscale_decision");
        assert_eq!(e.fields[0], ("lower", FieldValue::F64(1.5)));
        assert_eq!(e.fields[1], ("target", FieldValue::U64(3)));
        assert_eq!(e.fields[2], ("applied", FieldValue::Bool(true)));
        assert_eq!(
            e.fields[3],
            ("reason", FieldValue::Str("bound_crossed".into()))
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let t = TraceBuffer::new(true, 0);
        assert_eq!(t.capacity(), 1);
        t.record(0, "a", vec![]);
        t.record(1, "b", vec![]);
        let events = t.events(None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
    }
}
