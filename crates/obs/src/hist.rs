//! Log-linear histogram: fixed atomic buckets, bounded relative error.
//!
//! Values are `u64` (the engine records nanoseconds and sizes). The bucket
//! layout is log-linear with 8 sub-buckets per octave: values below 8 get
//! exact singleton buckets, and each octave `[2^e, 2^(e+1))` above that is
//! split into 8 equal-width buckets. Quantile estimates therefore land in
//! the *same bucket* as the exact quantile — a relative error of at most
//! one part in 8 (12.5%) — while the whole structure is 496 atomics that
//! never allocate or lock on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per octave (8 = 2^3).
const SUB_BITS: u32 = 3;

/// Total bucket count: 8 singletons + 61 octaves × 8 sub-buckets covering
/// exponents 3..=63 (index of the top set bit).
pub(crate) const BUCKETS: usize = 8 + 61 * 8;

/// The bucket index a value lands in. Exposed so tests can assert the
/// "quantile estimate shares the exact quantile's bucket" contract.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        8 + (exp - SUB_BITS as usize) * 8 + ((v >> (exp - SUB_BITS as usize)) & 7) as usize
    }
}

/// The largest value that lands in bucket `index` (the estimate a
/// quantile walk reports).
fn bucket_bound(index: usize) -> u64 {
    if index < 8 {
        index as u64
    } else {
        let b = index - 8;
        let exp = SUB_BITS as usize + b / 8;
        let sub = (b % 8) as u128;
        let hi = ((9 + sub) << (exp - SUB_BITS as usize)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    }
}

struct HistogramInner {
    enabled: bool,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A concurrent log-linear histogram. Cheap to clone (an `Arc`); the
/// record path is three relaxed atomic ops and one `fetch_max`.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// A point-in-time summary of a [`Histogram`]. Quantiles are bucket upper
/// bounds: within one log-linear bucket (≤ 12.5% relative error) of the
/// exact sample quantile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl Histogram {
    pub(crate) fn new(enabled: bool) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                enabled,
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one sample (no-op when the registry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        if !inner.enabled {
            return;
        }
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Summarize the current state. Concurrent recorders may land between
    /// the count read and the bucket walk; the walk clamps to whatever
    /// counts it sees, so the summary is always internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let counts: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bound(i);
                }
            }
            bucket_bound(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new(true);
        for v in 0..8 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 28);
        assert_eq!(s.max, 7);
        // Rank ceil(0.5*8)=4 → the 4th smallest value, 3, exactly.
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose bound is >= the value, and
        // bucket indices never decrease as values grow.
        let mut last = 0usize;
        for &v in &[
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of not monotone at {v}");
            assert!(b < BUCKETS);
            assert!(bucket_bound(b) >= v, "bound below value at {v}");
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshots_zero() {
        let h = Histogram::new(true);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The satellite contract: estimated quantiles land in the same
        /// log-linear bucket as the exact sample quantile.
        #[test]
        fn quantiles_within_one_bucket_of_exact(
            samples in proptest::collection::vec(0u64..1_000_000_000, 1..200)
        ) {
            let h = Histogram::new(true);
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let s = h.snapshot();
            for (q, est) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                prop_assert_eq!(
                    bucket_of(est), bucket_of(exact),
                    "q={} est={} exact={} n={}", q, est, exact, sorted.len()
                );
                prop_assert!(est >= exact, "estimate is the bucket upper bound");
            }
            prop_assert_eq!(s.max, *sorted.last().unwrap());
            prop_assert_eq!(s.count, sorted.len() as u64);
        }
    }
}
