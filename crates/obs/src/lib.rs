//! # rsdc-obs — std-only observability primitives
//!
//! Metrics and control-plane tracing for the [`rsdc-engine`] streaming
//! autoscaler. The engine's whole point is running the Albers–Quedenfeld
//! online policies *continuously*, which makes its control plane — LCP
//! bound crossings, autoscale decisions, incremental migrations, WAL
//! recovery — the interesting surface to observe. This crate provides the
//! two primitives that surface wires through:
//!
//! * a [`Registry`] of named metrics — striped monotonic [`Counter`]s,
//!   [`Gauge`]s, and log-linear [`Histogram`]s with cheap p50/p90/p99
//!   estimates — safe to hammer from the engine's shard threads;
//! * a bounded [`TraceBuffer`] ring of structured control-plane
//!   [`TraceEvent`]s with monotonic sequence numbers, so decision ordering
//!   (fence before commit, window open before deferred admit) can be
//!   reconstructed post-hoc.
//!
//! Everything is `std`-only (no serde): the engine's wire layer converts
//! snapshots to JSON itself, and [`Registry::render_prometheus`] emits the
//! text exposition format directly.
//!
//! ## Determinism contract
//!
//! Nothing in this crate feeds back into engine state: metrics and traces
//! are observation-only, live outside journaled state, and may be enabled
//! or disabled without changing a single journaled byte. A disabled
//! registry turns every record call into a branch on a baked-in flag, so
//! the instrumented hot path costs near-zero when observability is off.
//!
//! [`rsdc-engine`]: ../rsdc_engine/index.html

#![warn(missing_docs)]

pub mod hist;
pub mod trace;

pub use hist::{bucket_of, Histogram, HistogramSnapshot};
pub use trace::{FieldValue, TraceBuffer, TraceEvent};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of counter stripes; enough to keep the default shard counts
/// (1–16 worker threads) from contending on one cache line.
const STRIPES: usize = 8;

/// Round-robin source of thread stripe assignments.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread's stripe, assigned round-robin on first touch.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// One `AtomicU64` alone on its cache line, so stripes don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A metric's identity: a name plus at most one `key="value"` label pair
/// (enough for the engine's per-shard breakdowns without a label DSL).
/// Ordering is lexicographic, so registry snapshots come out sorted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `engine_events_ingested`.
    pub name: String,
    /// Optional `(key, value)` label, e.g. `("shard", "3")`.
    pub label: Option<(String, String)>,
}

impl MetricId {
    /// Unlabelled id.
    pub fn plain(name: &str) -> MetricId {
        MetricId {
            name: name.to_string(),
            label: None,
        }
    }

    /// Id carrying one label pair.
    pub fn labelled(name: &str, key: &str, value: &str) -> MetricId {
        MetricId {
            name: name.to_string(),
            label: Some((key.to_string(), value.to_string())),
        }
    }
}

struct CounterInner {
    enabled: bool,
    stripes: [PaddedU64; STRIPES],
}

/// A monotonic counter, striped across cache lines so concurrent shard
/// threads increment without bouncing one line. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    fn new(enabled: bool) -> Counter {
        Counter {
            inner: Arc::new(CounterInner {
                enabled,
                stripes: Default::default(),
            }),
        }
    }

    /// Add `n` to the counter (no-op when the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.inner.enabled {
            return;
        }
        STRIPE.with(|&s| self.inner.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum over stripes).
    pub fn value(&self) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

struct GaugeInner {
    enabled: bool,
    value: AtomicI64,
}

/// A settable signed gauge. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    fn new(enabled: bool) -> Gauge {
        Gauge {
            inner: Arc::new(GaugeInner {
                enabled,
                value: AtomicI64::new(0),
            }),
        }
    }

    /// Set the gauge (no-op when the registry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if self.inner.enabled {
            self.inner.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.inner.enabled {
            self.inner.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one (for gauges tracking a live population, e.g.
    /// open connections).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One metric in a [`Registry::snapshot`]: identity plus current value.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// The metric's identity.
    pub id: MetricId,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct RegistryInner {
    enabled: bool,
    metrics: Mutex<BTreeMap<MetricId, Metric>>,
}

/// A registry of named metrics. Handle lookup takes a lock (call it at
/// setup, not per event); the returned handles are lock-free. Cheap to
/// clone (an `Arc`).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A registry; `enabled = false` bakes a no-op flag into every handle
    /// it hands out, making instrumentation near-free.
    pub fn new(enabled: bool) -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled,
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The counter with this id, registering it on first use. Panics if
    /// the id is already registered as a different metric kind. A disabled
    /// registry hands out detached no-op handles and registers nothing, so
    /// its snapshot stays empty.
    pub fn counter(&self, id: MetricId) -> Counter {
        if !self.inner.enabled {
            return Counter::new(false);
        }
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(id.clone())
            .or_insert_with(|| Metric::Counter(Counter::new(self.inner.enabled)))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {id:?} already registered with another kind"),
        }
    }

    /// The gauge with this id, registering it on first use.
    pub fn gauge(&self, id: MetricId) -> Gauge {
        if !self.inner.enabled {
            return Gauge::new(false);
        }
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(id.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::new(self.inner.enabled)))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {id:?} already registered with another kind"),
        }
    }

    /// The histogram with this id, registering it on first use.
    pub fn histogram(&self, id: MetricId) -> Histogram {
        if !self.inner.enabled {
            return Histogram::new(false);
        }
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(id.clone())
            .or_insert_with(|| Metric::Histogram(Histogram::new(self.inner.enabled)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {id:?} already registered with another kind"),
        }
    }

    /// Point-in-time values of every registered metric, sorted by id.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.inner.metrics.lock().expect("registry poisoned");
        metrics
            .iter()
            .map(|(id, metric)| MetricSnapshot {
                id: id.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Histograms come out as summaries (`{quantile="..."}` series plus
    /// `_count`/`_sum`/`_max`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for m in self.snapshot() {
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            if m.id.name != last_name {
                out.push_str(&format!("# TYPE {} {kind}\n", m.id.name));
                last_name = m.id.name.clone();
            }
            let label = |extra: Option<(&str, String)>| -> String {
                let mut pairs = Vec::new();
                if let Some((k, v)) = &m.id.label {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if let Some((k, v)) = extra {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            match m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.id.name, label(None)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.id.name, label(None)));
                }
                MetricValue::Histogram(h) => {
                    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        out.push_str(&format!(
                            "{}{} {v}\n",
                            m.id.name,
                            label(Some(("quantile", q.to_string())))
                        ));
                    }
                    out.push_str(&format!("{}_count{} {}\n", m.id.name, label(None), h.count));
                    out.push_str(&format!("{}_sum{} {}\n", m.id.name, label(None), h.sum));
                    out.push_str(&format!("{}_max{} {}\n", m.id.name, label(None), h.max));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = Registry::new(true);
        let c = reg.counter(MetricId::plain("hits"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new(false);
        let c = reg.counter(MetricId::plain("hits"));
        let g = reg.gauge(MetricId::plain("level"));
        let h = reg.histogram(MetricId::plain("lat"));
        c.add(10);
        g.set(5);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(!reg.enabled());
    }

    #[test]
    fn same_id_returns_same_handle() {
        let reg = Registry::new(true);
        let a = reg.counter(MetricId::labelled("x", "shard", "0"));
        let b = reg.counter(MetricId::labelled("x", "shard", "0"));
        a.inc();
        assert_eq!(b.value(), 1);
        // A different label is a different metric.
        let c = reg.counter(MetricId::labelled("x", "shard", "1"));
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new(true);
        reg.counter(MetricId::plain("x"));
        reg.gauge(MetricId::plain("x"));
    }

    #[test]
    fn snapshot_is_sorted_and_prometheus_renders() {
        let reg = Registry::new(true);
        reg.counter(MetricId::plain("zeta")).add(1);
        reg.counter(MetricId::plain("alpha")).add(2);
        reg.histogram(MetricId::labelled("lat", "shard", "0"))
            .record(100);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.iter().map(|m| m.id.name.as_str()).collect();
        assert_eq!(names, ["alpha", "lat", "zeta"]);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE alpha counter"));
        assert!(text.contains("alpha 2\n"));
        assert!(text.contains("# TYPE lat summary"));
        assert!(text.contains("lat{shard=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_count{shard=\"0\"} 1"));
    }
}
