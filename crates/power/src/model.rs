//! Utilization → watts models for a single machine.
//!
//! The trait and the concrete models take a *utilization* in `[0, 1]`
//! (fraction of the machine's serving capacity in use) and return the
//! machine's power draw in watts. Callers that can overload a machine
//! (offered events above capacity) choose their own convention: the
//! [`EnergyMeter`](crate::EnergyMeter) clamps utilization at `1.0`
//! (a saturated machine draws peak power), while the topology policy's
//! priced induced instance feeds the raw ratio and relies on the models'
//! linear extrapolation above `1.0` — that keeps the induced per-tick
//! cost convex in the machine count, which the 3-competitive LCP bound
//! requires.

use serde::{Deserialize, Serialize};

/// Power draw of one machine as a function of its utilization.
///
/// Implementations must be total over `u >= 0`: negative inputs are
/// treated as `0.0`, inputs above `1.0` extrapolate the final segment
/// linearly (see the module docs for why).
pub trait PowerModel {
    /// Watts drawn at utilization `u`.
    fn watts(&self, u: f64) -> f64;
}

/// Utilization-independent draw: `watts(u) = w`.
///
/// The degenerate model, and the bridge to `crates/hetero`: a server
/// type's per-slot `energy` there is exactly a constant draw over one
/// tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl PowerModel for Constant {
    fn watts(&self, _u: f64) -> f64 {
        self.0
    }
}

/// The classic linear server model: `idle` watts at zero utilization,
/// `peak` at full, linear in between (and beyond — overload extrapolates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linear {
    /// Draw at utilization `0.0`.
    pub idle: f64,
    /// Draw at utilization `1.0` (`>= idle`).
    pub peak: f64,
}

impl PowerModel for Linear {
    fn watts(&self, u: f64) -> f64 {
        self.idle + (self.peak - self.idle) * u.max(0.0)
    }
}

/// A measured utilization curve, SPEC-SERT style: watts at `n >= 2`
/// evenly spaced utilization points `0, 1/(n-1), ..., 1`, linearly
/// interpolated between points and extrapolated beyond the last segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Piecewise {
    points: Vec<f64>,
}

impl Piecewise {
    /// Build from the evenly spaced watt samples. Fails unless there are
    /// at least two finite, non-negative, non-decreasing points (a real
    /// machine never draws less at higher load).
    pub fn new(points: Vec<f64>) -> Result<Piecewise, String> {
        if points.len() < 2 {
            return Err("piecewise model needs at least 2 points".to_string());
        }
        for (i, p) in points.iter().enumerate() {
            if !(p.is_finite() && *p >= 0.0) {
                return Err(format!("piecewise point {i} must be finite and >= 0"));
            }
        }
        if points.windows(2).any(|w| w[1] < w[0]) {
            return Err("piecewise points must be non-decreasing".to_string());
        }
        Ok(Piecewise { points })
    }

    /// The watt samples.
    pub fn points(&self) -> &[f64] {
        &self.points
    }
}

impl PowerModel for Piecewise {
    fn watts(&self, u: f64) -> f64 {
        let n = self.points.len();
        let scaled = u.max(0.0) * (n - 1) as f64;
        // Index of the segment to interpolate on; everything past the
        // last sample extrapolates the final segment.
        let seg = (scaled.floor() as usize).min(n - 2);
        let frac = scaled - seg as f64;
        self.points[seg] + (self.points[seg + 1] - self.points[seg]) * frac
    }
}

/// Serializable name of a power model — what configs, the wire protocol
/// and the CLI carry. Dispatches [`PowerModel`] to the concrete models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerSpec {
    /// [`Constant`] draw.
    Constant {
        /// Draw at any utilization.
        watts: f64,
    },
    /// [`Linear`] idle/peak model.
    Linear {
        /// Draw at utilization `0.0`.
        idle: f64,
        /// Draw at utilization `1.0`.
        peak: f64,
    },
    /// [`Piecewise`] measured curve (evenly spaced samples over `[0, 1]`).
    Piecewise {
        /// Watt samples at `0, 1/(n-1), ..., 1`.
        points: Vec<f64>,
    },
}

impl PowerSpec {
    /// Parse the CLI / wire short syntax:
    ///
    /// * `constant:W` — constant draw;
    /// * `linear:IDLE:PEAK` — e.g. `linear:100:250`;
    /// * `piecewise:W0,W1,...,Wn` — evenly spaced samples over `[0, 1]`.
    pub fn parse(s: &str) -> Result<PowerSpec, String> {
        let num = |what: &str, v: &str| -> Result<f64, String> {
            v.trim()
                .parse::<f64>()
                .map_err(|e| format!("power model: bad {what} {v:?}: {e}"))
        };
        let (kind, rest) = match s.split_once(':') {
            Some(pair) => pair,
            None => return Err(format!("power model: expected KIND:ARGS, got {s:?}")),
        };
        let spec = match kind {
            "constant" => PowerSpec::Constant {
                watts: num("watts", rest)?,
            },
            "linear" => {
                let (idle, peak) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("power model: linear needs IDLE:PEAK, got {rest:?}"))?;
                PowerSpec::Linear {
                    idle: num("idle watts", idle)?,
                    peak: num("peak watts", peak)?,
                }
            }
            "piecewise" => {
                let points = rest
                    .split(',')
                    .map(|p| num("point", p))
                    .collect::<Result<Vec<f64>, String>>()?;
                PowerSpec::Piecewise { points }
            }
            other => {
                return Err(format!(
                    "power model: unknown kind {other:?} (constant|linear|piecewise)"
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validate the parameters (finite, non-negative, `peak >= idle`,
    /// piecewise non-decreasing with at least two points).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PowerSpec::Constant { watts } => {
                if !(watts.is_finite() && *watts >= 0.0) {
                    return Err("constant watts must be finite and >= 0".to_string());
                }
            }
            PowerSpec::Linear { idle, peak } => {
                for (name, w) in [("idle", idle), ("peak", peak)] {
                    if !(w.is_finite() && *w >= 0.0) {
                        return Err(format!("{name} watts must be finite and >= 0"));
                    }
                }
                if peak < idle {
                    return Err(format!("peak watts {peak} must be >= idle watts {idle}"));
                }
            }
            PowerSpec::Piecewise { points } => {
                Piecewise::new(points.clone())?;
            }
        }
        Ok(())
    }

    /// Short human-readable rendering (the parse syntax back).
    pub fn describe(&self) -> String {
        match self {
            PowerSpec::Constant { watts } => format!("constant:{watts}"),
            PowerSpec::Linear { idle, peak } => format!("linear:{idle}:{peak}"),
            PowerSpec::Piecewise { points } => {
                let pts: Vec<String> = points.iter().map(|p| p.to_string()).collect();
                format!("piecewise:{}", pts.join(","))
            }
        }
    }
}

impl PowerModel for PowerSpec {
    fn watts(&self, u: f64) -> f64 {
        match self {
            PowerSpec::Constant { watts } => Constant(*watts).watts(u),
            PowerSpec::Linear { idle, peak } => Linear {
                idle: *idle,
                peak: *peak,
            }
            .watts(u),
            // Specs are validated at the boundary (parse/config install),
            // so the rebuild here cannot fail.
            PowerSpec::Piecewise { points } => Piecewise::new(points.clone())
                .expect("validated piecewise spec")
                .watts(u),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates_and_extrapolates() {
        let m = Linear {
            idle: 100.0,
            peak: 250.0,
        };
        assert_eq!(m.watts(0.0), 100.0);
        assert_eq!(m.watts(1.0), 250.0);
        assert_eq!(m.watts(0.5), 175.0);
        assert_eq!(m.watts(-0.5), 100.0, "negative utilization clamps to 0");
        assert_eq!(m.watts(2.0), 400.0, "overload extrapolates linearly");
    }

    #[test]
    fn piecewise_matches_its_samples_and_midpoints() {
        let m = Piecewise::new(vec![90.0, 130.0, 210.0]).unwrap();
        assert_eq!(m.watts(0.0), 90.0);
        assert_eq!(m.watts(0.5), 130.0);
        assert_eq!(m.watts(1.0), 210.0);
        assert_eq!(m.watts(0.25), 110.0);
        assert_eq!(m.watts(0.75), 170.0);
        assert_eq!(m.watts(1.5), 290.0, "extrapolates the last segment");
        assert_eq!(m.watts(-1.0), 90.0);
    }

    #[test]
    fn piecewise_rejects_bad_curves() {
        assert!(Piecewise::new(vec![100.0]).is_err());
        assert!(Piecewise::new(vec![100.0, 90.0]).is_err());
        assert!(Piecewise::new(vec![100.0, f64::NAN]).is_err());
        assert!(Piecewise::new(vec![-1.0, 10.0]).is_err());
    }

    #[test]
    fn parse_round_trips_the_short_syntax() {
        let spec = PowerSpec::parse("linear:100:250").unwrap();
        assert_eq!(
            spec,
            PowerSpec::Linear {
                idle: 100.0,
                peak: 250.0
            }
        );
        assert_eq!(PowerSpec::parse(&spec.describe()).unwrap(), spec);
        let spec = PowerSpec::parse("constant:42.5").unwrap();
        assert_eq!(spec.watts(0.3), 42.5);
        let spec = PowerSpec::parse("piecewise:90,130,210").unwrap();
        assert_eq!(spec.watts(0.5), 130.0);
        assert_eq!(PowerSpec::parse(&spec.describe()).unwrap(), spec);

        assert!(PowerSpec::parse("linear:100").is_err());
        assert!(PowerSpec::parse("linear:250:100").is_err(), "peak < idle");
        assert!(PowerSpec::parse("piecewise:100").is_err());
        assert!(PowerSpec::parse("fusion:1:2").is_err());
        assert!(PowerSpec::parse("constant").is_err());
        assert!(PowerSpec::parse("constant:-3").is_err());
    }

    #[test]
    fn spec_dispatch_matches_concrete_models() {
        let spec = PowerSpec::Linear {
            idle: 10.0,
            peak: 20.0,
        };
        for u in [0.0, 0.25, 0.7, 1.0, 1.3] {
            assert_eq!(
                spec.watts(u),
                Linear {
                    idle: 10.0,
                    peak: 20.0
                }
                .watts(u)
            );
        }
    }
}
