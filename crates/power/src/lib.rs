//! # rsdc-power — power models, energy metering and price schedules
//!
//! The source paper minimizes *energy*: every per-slot cost is implicitly
//! a power draw integrated over the slot, and the switching cost `beta`
//! is the energy price of powering a machine up. The rest of the
//! workspace prices work in abstract cost units; this crate supplies the
//! physical layer that turns those units into watts, joules and money:
//!
//! * [`PowerModel`] — utilization → watts for **one machine**, with
//!   [`Constant`], [`Linear`] (idle/peak watts) and [`Piecewise`]
//!   (SPEC-SERT-style measured curve) implementations, plus the
//!   serializable [`PowerSpec`] that names one of them in configs and on
//!   the wire;
//! * [`EnergyMeter`] — integrates per-shard watts over the engine's
//!   *logical* clock (one tick per ingested batch) into joules, and
//!   through a [`PriceSchedule`] into cost;
//! * [`PriceSchedule`] — constant, step/time-of-day, or trace-driven
//!   $/kWh (or carbon-intensity) series: a **time-varying `beta`** in the
//!   paper's terms.
//!
//! Units are logical: one tick is the time unit, so "joules" here are
//! watt·ticks and a price is cost per watt·tick. The engine's
//! determinism contract applies: meters are process state, never
//! journaled, so metering on/off cannot change a journaled byte.

#![warn(missing_docs)]

mod meter;
mod model;
mod price;

pub use meter::{EnergyDelta, EnergyMeter, EnergyStatus, ShardSample};
pub use model::{Constant, Linear, Piecewise, PowerModel, PowerSpec};
pub use price::PriceSchedule;

use serde::{Deserialize, Serialize};

/// Everything the engine needs to account energy: the per-machine power
/// model, the serving capacity that converts event counts into
/// utilization, and the price schedule that converts joules into cost.
///
/// Shared by the [`EnergyMeter`] (measurement) and the topology policy's
/// priced induced instance (decision), so both see the same physics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Per-machine utilization → watts model.
    pub model: PowerSpec,
    /// Events one machine serves per tick at full utilization (`> 0`).
    pub capacity: f64,
    /// Price per joule (watt·tick) as a function of the logical tick.
    pub price: PriceSchedule,
}

impl PowerConfig {
    /// A config with `capacity = 1.0` and a constant unit price.
    pub fn new(model: PowerSpec) -> PowerConfig {
        PowerConfig {
            model,
            capacity: 1.0,
            price: PriceSchedule::Constant { price: 1.0 },
        }
    }

    /// Validate the model, the capacity and the schedule.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()?;
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(format!(
                "capacity must be finite and > 0, got {}",
                self.capacity
            ));
        }
        self.price.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_all_three_parts() {
        let mut cfg = PowerConfig::new(PowerSpec::Linear {
            idle: 100.0,
            peak: 250.0,
        });
        assert!(cfg.validate().is_ok());
        cfg.capacity = 0.0;
        assert!(cfg.validate().is_err());
        cfg.capacity = 8.0;
        cfg.price = PriceSchedule::Step {
            period: 0,
            prices: vec![1.0],
        };
        assert!(cfg.validate().is_err());
        cfg.price = PriceSchedule::Constant { price: 2.0 };
        cfg.model = PowerSpec::Linear {
            idle: 250.0,
            peak: 100.0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        use serde::{Deserialize as _, Serialize as _};
        let cfg = PowerConfig {
            model: PowerSpec::Piecewise {
                points: vec![90.0, 140.0, 200.0],
            },
            capacity: 16.0,
            price: PriceSchedule::Step {
                period: 12,
                prices: vec![1.0, 4.0],
            },
        };
        let text = serde_json::to_string(&cfg.to_value()).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(PowerConfig::from_value(&v).unwrap(), cfg);
    }
}
