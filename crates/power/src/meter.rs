//! The energy meter: per-shard watts integrated over the logical clock.

use crate::{PowerConfig, PowerModel, PriceSchedule};
use serde::{Deserialize, Serialize};

/// One shard's load sample for one logical tick: the events it applied
/// this tick and the machines (committed tenant states) it hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSample {
    /// Events the shard applied this tick.
    pub events: u64,
    /// Machines currently committed across the shard's tenants. A shard
    /// with zero recorded machines still draws one machine's idle power
    /// (the chassis hosting the worker is on).
    pub machines: u64,
}

/// What one [`EnergyMeter::observe`] call added to the running totals.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyDelta {
    /// Joules (watt·ticks) added this tick, across all shards.
    pub joules: f64,
    /// Cost added this tick (`joules * price`).
    pub cost: f64,
    /// The price per joule this tick was charged at.
    pub price: f64,
    /// Whether the price changed relative to the previous tick (true on
    /// the first tick): the edge signal for `price_window` trace events.
    pub price_changed: bool,
}

/// Point-in-time meter read-back: the configuration and the running
/// totals, plus the last tick's per-shard physics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyStatus {
    /// The power model in force.
    pub model: crate::PowerSpec,
    /// Events one machine serves per tick at full utilization.
    pub capacity: f64,
    /// The price schedule in force.
    pub price: PriceSchedule,
    /// Logical ticks metered.
    pub ticks: u64,
    /// Total joules (watt·ticks) since the meter was installed.
    pub joules: f64,
    /// Total priced cost since the meter was installed.
    pub cost: f64,
    /// The price a tick observed now would be charged at.
    pub price_now: f64,
    /// Per-shard watts at the last observed tick (empty before the
    /// first).
    pub watts: Vec<f64>,
    /// Per-shard utilization at the last observed tick (clamped to
    /// `[0, 1]`; empty before the first).
    pub utilization: Vec<f64>,
}

/// Integrates per-shard power draw over the engine's logical clock.
///
/// One [`observe`](EnergyMeter::observe) call is one tick (the engine
/// calls it once per ingested batch, next to the topology policy's
/// observation). Per shard, utilization is `events / (machines *
/// capacity)` clamped to `[0, 1]` and the draw is `machines *
/// model.watts(utilization)`, with `machines` floored at one — an idle
/// shard still burns idle watts, which is exactly the waste the paper's
/// right-sizing exists to eliminate.
///
/// The meter is **process state**: it is never journaled, and recovery
/// restarts it from zero (the same contract the metrics registry and the
/// topology policy follow), so metering on/off cannot perturb a single
/// journaled byte.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    cfg: PowerConfig,
    ticks: u64,
    joules: f64,
    cost: f64,
    last_watts: Vec<f64>,
    last_util: Vec<f64>,
    last_price: Option<f64>,
}

impl EnergyMeter {
    /// A meter for a validated configuration.
    pub fn new(cfg: PowerConfig) -> EnergyMeter {
        EnergyMeter {
            cfg,
            ticks: 0,
            joules: 0.0,
            cost: 0.0,
            last_watts: Vec::new(),
            last_util: Vec::new(),
            last_price: None,
        }
    }

    /// The configuration the meter runs on.
    pub fn config(&self) -> &PowerConfig {
        &self.cfg
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total joules so far.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total priced cost so far.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Per-shard watts at the last observed tick (empty before the first).
    pub fn last_watts(&self) -> &[f64] {
        &self.last_watts
    }

    /// Per-shard clamped utilization at the last observed tick (empty
    /// before the first).
    pub fn last_utilization(&self) -> &[f64] {
        &self.last_util
    }

    /// One machine-group's physics under `cfg`: `(watts, utilization)`
    /// for `machines` machines serving `events` this tick. The shared
    /// primitive between the meter and per-tenant attribution.
    pub fn sample_physics(cfg: &PowerConfig, events: u64, machines: u64) -> (f64, f64) {
        let machines = machines.max(1) as f64;
        let util = (events as f64 / (machines * cfg.capacity)).clamp(0.0, 1.0);
        (machines * cfg.model.watts(util), util)
    }

    /// Meter one logical tick from the per-shard samples.
    pub fn observe(&mut self, samples: &[ShardSample]) -> EnergyDelta {
        let price = self.cfg.price.price_at(self.ticks);
        self.last_watts.clear();
        self.last_util.clear();
        let mut joules = 0.0;
        for s in samples {
            let (watts, util) = EnergyMeter::sample_physics(&self.cfg, s.events, s.machines);
            self.last_watts.push(watts);
            self.last_util.push(util);
            joules += watts; // * 1.0 tick
        }
        let cost = joules * price;
        self.joules += joules;
        self.cost += cost;
        self.ticks += 1;
        let price_changed = self.last_price != Some(price);
        self.last_price = Some(price);
        EnergyDelta {
            joules,
            cost,
            price,
            price_changed,
        }
    }

    /// Point-in-time read-back.
    pub fn status(&self) -> EnergyStatus {
        EnergyStatus {
            model: self.cfg.model.clone(),
            capacity: self.cfg.capacity,
            price: self.cfg.price.clone(),
            ticks: self.ticks,
            joules: self.joules,
            cost: self.cost,
            price_now: self.cfg.price.price_at(self.ticks),
            watts: self.last_watts.clone(),
            utilization: self.last_util.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerSpec;

    fn cfg() -> PowerConfig {
        PowerConfig {
            model: PowerSpec::Linear {
                idle: 100.0,
                peak: 250.0,
            },
            capacity: 4.0,
            price: PriceSchedule::Step {
                period: 2,
                prices: vec![1.0, 3.0],
            },
        }
    }

    #[test]
    fn integrates_watts_over_ticks_with_prices() {
        let mut m = EnergyMeter::new(cfg());
        // Shard 0: 2 machines at util 8/(2*4) = 1.0 → 2 * 250 = 500 W.
        // Shard 1: 1 machine at util 2/4 = 0.5 → 175 W.
        let samples = [
            ShardSample {
                events: 8,
                machines: 2,
            },
            ShardSample {
                events: 2,
                machines: 1,
            },
        ];
        let d = m.observe(&samples);
        assert_eq!(d.joules, 675.0);
        assert_eq!(d.price, 1.0);
        assert!(d.price_changed, "first tick opens a price window");
        let d = m.observe(&samples);
        assert!(!d.price_changed);
        let d = m.observe(&samples);
        assert_eq!(d.price, 3.0, "third tick enters the expensive window");
        assert!(d.price_changed);
        assert_eq!(m.joules(), 3.0 * 675.0);
        assert_eq!(m.cost(), 675.0 + 675.0 + 3.0 * 675.0);
        let status = m.status();
        assert_eq!(status.ticks, 3);
        assert_eq!(status.watts, vec![500.0, 175.0]);
        assert_eq!(status.utilization, vec![1.0, 0.5]);
        assert_eq!(status.price_now, 3.0, "tick 3 is still expensive");
    }

    #[test]
    fn empty_shard_draws_one_idle_machine() {
        let mut m = EnergyMeter::new(cfg());
        let d = m.observe(&[ShardSample {
            events: 0,
            machines: 0,
        }]);
        assert_eq!(d.joules, 100.0, "one phantom machine at idle");
        // Overload clamps at peak: 100 events on 1 machine of capacity 4.
        let d = m.observe(&[ShardSample {
            events: 100,
            machines: 1,
        }]);
        assert_eq!(d.joules, 250.0);
        assert_eq!(m.status().utilization, vec![1.0]);
    }

    #[test]
    fn status_round_trips_through_json() {
        use serde::{Deserialize as _, Serialize as _};
        let mut m = EnergyMeter::new(cfg());
        m.observe(&[ShardSample {
            events: 3,
            machines: 2,
        }]);
        let text = serde_json::to_string(&m.status().to_value()).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(EnergyStatus::from_value(&v).unwrap(), m.status());
    }
}
