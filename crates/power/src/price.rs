//! Energy price schedules: cost per joule as a function of the logical
//! tick — the paper's `beta` made time-varying.

use serde::{Deserialize, Serialize};

/// Price of one joule (watt·tick) at a given logical tick.
///
/// Prices must be finite and non-negative; zero is allowed (free/green
/// windows). The schedule is total: every tick has a price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PriceSchedule {
    /// The same price forever.
    Constant {
        /// Price per joule.
        price: f64,
    },
    /// A repeating time-of-day cycle: each price holds for `period`
    /// ticks, then the next takes over, wrapping around.
    Step {
        /// Ticks each price level holds (`>= 1`).
        period: u64,
        /// The cycle of price levels (non-empty).
        prices: Vec<f64>,
    },
    /// A recorded $/kWh or carbon-intensity series, one price per tick;
    /// the final value holds beyond the end of the trace.
    Trace {
        /// Per-tick prices (non-empty).
        prices: Vec<f64>,
    },
}

impl PriceSchedule {
    /// Parse the CLI / wire short syntax:
    ///
    /// * a bare number (e.g. `2.5`) or `constant:P` — constant price;
    /// * `step:PERIOD:P1,P2,...` — e.g. `step:24:1.0,3.5` for a cheap
    ///   and an expensive 24-tick window alternating;
    /// * `trace:P1,P2,...` — explicit per-tick series.
    pub fn parse(s: &str) -> Result<PriceSchedule, String> {
        let num = |what: &str, v: &str| -> Result<f64, String> {
            v.trim()
                .parse::<f64>()
                .map_err(|e| format!("price: bad {what} {v:?}: {e}"))
        };
        let list = |v: &str| -> Result<Vec<f64>, String> {
            v.split(',').map(|p| num("price", p)).collect()
        };
        let schedule = match s.split_once(':') {
            None => PriceSchedule::Constant {
                price: num("price", s)?,
            },
            Some(("constant", rest)) => PriceSchedule::Constant {
                price: num("price", rest)?,
            },
            Some(("step", rest)) => {
                let (period, prices) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("price: step needs PERIOD:P1,P2,..., got {rest:?}"))?;
                let period = period
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("price: bad period {period:?}: {e}"))?;
                PriceSchedule::Step {
                    period,
                    prices: list(prices)?,
                }
            }
            Some(("trace", rest)) => PriceSchedule::Trace {
                prices: list(rest)?,
            },
            Some((other, _)) => {
                return Err(format!(
                    "price: unknown kind {other:?} (constant|step|trace, or a bare number)"
                ))
            }
        };
        schedule.validate()?;
        Ok(schedule)
    }

    /// Validate: finite non-negative prices, non-empty cycles, `period
    /// >= 1`.
    pub fn validate(&self) -> Result<(), String> {
        let check = |prices: &[f64]| -> Result<(), String> {
            if prices.is_empty() {
                return Err("price schedule needs at least one price".to_string());
            }
            for (i, p) in prices.iter().enumerate() {
                if !(p.is_finite() && *p >= 0.0) {
                    return Err(format!("price {i} must be finite and >= 0"));
                }
            }
            Ok(())
        };
        match self {
            PriceSchedule::Constant { price } => check(std::slice::from_ref(price)),
            PriceSchedule::Step { period, prices } => {
                if *period == 0 {
                    return Err("step period must be >= 1".to_string());
                }
                check(prices)
            }
            PriceSchedule::Trace { prices } => check(prices),
        }
    }

    /// The price in effect at logical tick `tick`.
    pub fn price_at(&self, tick: u64) -> f64 {
        match self {
            PriceSchedule::Constant { price } => *price,
            PriceSchedule::Step { period, prices } => {
                let window = (tick / (*period).max(1)) as usize % prices.len();
                prices[window]
            }
            PriceSchedule::Trace { prices } => {
                let i = (tick as usize).min(prices.len() - 1);
                prices[i]
            }
        }
    }

    /// The long-run mean price: the cycle mean for [`Step`], the trace
    /// mean for [`Trace`] — what a "constant-price twin" of this schedule
    /// charges. Used by the deferral tests to build a fair baseline.
    ///
    /// [`Step`]: PriceSchedule::Step
    /// [`Trace`]: PriceSchedule::Trace
    pub fn mean(&self) -> f64 {
        match self {
            PriceSchedule::Constant { price } => *price,
            PriceSchedule::Step { prices, .. } | PriceSchedule::Trace { prices } => {
                prices.iter().sum::<f64>() / prices.len() as f64
            }
        }
    }

    /// Short human-readable rendering (the parse syntax back).
    pub fn describe(&self) -> String {
        let join = |prices: &[f64]| -> String {
            prices
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<String>>()
                .join(",")
        };
        match self {
            PriceSchedule::Constant { price } => format!("constant:{price}"),
            PriceSchedule::Step { period, prices } => format!("step:{period}:{}", join(prices)),
            PriceSchedule::Trace { prices } => format!("trace:{}", join(prices)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_cycles_through_windows() {
        let s = PriceSchedule::Step {
            period: 3,
            prices: vec![1.0, 5.0],
        };
        let got: Vec<f64> = (0..9).map(|t| s.price_at(t)).collect();
        assert_eq!(got, [1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn trace_holds_its_last_value() {
        let s = PriceSchedule::Trace {
            prices: vec![2.0, 4.0, 1.0],
        };
        assert_eq!(s.price_at(0), 2.0);
        assert_eq!(s.price_at(2), 1.0);
        assert_eq!(s.price_at(100), 1.0);
        assert!((s.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        assert_eq!(
            PriceSchedule::parse("2.5").unwrap(),
            PriceSchedule::Constant { price: 2.5 }
        );
        let s = PriceSchedule::parse("step:24:1,3.5").unwrap();
        assert_eq!(
            s,
            PriceSchedule::Step {
                period: 24,
                prices: vec![1.0, 3.5]
            }
        );
        assert_eq!(PriceSchedule::parse(&s.describe()).unwrap(), s);
        let s = PriceSchedule::parse("trace:1,2,3").unwrap();
        assert_eq!(PriceSchedule::parse(&s.describe()).unwrap(), s);

        assert!(PriceSchedule::parse("step:0:1,2").is_err());
        assert!(PriceSchedule::parse("step:5").is_err());
        assert!(PriceSchedule::parse("trace:").is_err());
        assert!(PriceSchedule::parse("surge:1").is_err());
        assert!(PriceSchedule::parse("-1.0").is_err());
        assert!(PriceSchedule::parse("nan").is_err());
    }
}
