//! Synthetic workload traces.
//!
//! Lin et al. [22, 24] evaluate right-sizing on two proprietary traces (an
//! MSR cluster and Hotmail). Those are not redistributable, so this module
//! generates traces with the same qualitative shape statistics the paper
//! discusses: strong diurnal periodicity, bursts, occasional spikes and a
//! tunable peak-to-mean ratio. The optimization algorithms only ever see
//! the convex per-slot cost functions derived from a trace, so any trace
//! with comparable variability exercises identical code paths (DESIGN.md,
//! substitution 1).
//!
//! All generators are deterministic given a seed (ChaCha8).

use rand::distributions::Distribution;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A workload trace: arrival load per slot, in "server-loads" (a load of
/// `k` keeps `k` servers fully busy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Load per time slot, non-negative.
    pub loads: Vec<f64>,
    /// Free-form provenance label ("diurnal(seed=1)", file name, ...).
    pub label: String,
}

impl Trace {
    /// Build from raw loads.
    pub fn new(label: impl Into<String>, loads: Vec<f64>) -> Self {
        Self {
            loads,
            label: label.into(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True if the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Mean load.
    pub fn mean(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().sum::<f64>() / self.loads.len() as f64
        }
    }

    /// Peak load.
    pub fn peak(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Peak-to-mean ratio. Always finite, so trace statistics survive a
    /// JSON round trip (the serializer renders non-finite floats as
    /// `null`): 1.0 for constant traces — including all-zero ("no load
    /// is perfectly flat") and empty ones — and 0.0 when the ratio is
    /// undefined (a non-positive mean with a nonzero peak, which only
    /// degenerate hand-built traces with negative loads can produce).
    pub fn peak_to_mean(&self) -> f64 {
        let m = self.mean();
        if m > 0.0 {
            self.peak() / m
        } else if self.peak() == 0.0 {
            1.0
        } else {
            0.0
        }
    }

    /// Rescale so that the peak equals `new_peak`.
    pub fn scaled_to_peak(&self, new_peak: f64) -> Trace {
        let peak = self.peak();
        if peak == 0.0 {
            return self.clone();
        }
        let k = new_peak / peak;
        Trace {
            loads: self.loads.iter().map(|l| l * k).collect(),
            label: format!("{}*{k:.3}", self.label),
        }
    }

    /// Clamp every load into `[0, cap]`.
    pub fn clamped(&self, cap: f64) -> Trace {
        Trace {
            loads: self.loads.iter().map(|l| l.clamp(0.0, cap)).collect(),
            label: self.label.clone(),
        }
    }
}

/// Diurnal (daily-periodic) trace: sinusoid plus multiplicative noise.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Diurnal {
    /// Slots per day.
    pub period: usize,
    /// Mean load at the daily trough.
    pub base: f64,
    /// Mean load at the daily peak.
    pub peak: f64,
    /// Multiplicative noise amplitude in `[0, 1)`.
    pub noise: f64,
}

impl Default for Diurnal {
    fn default() -> Self {
        Self {
            period: 48,
            base: 2.0,
            peak: 16.0,
            noise: 0.1,
        }
    }
}

impl Diurnal {
    /// Generate `t_len` slots.
    pub fn generate(&self, t_len: usize, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let amp = (self.peak - self.base) / 2.0;
        let mid = (self.peak + self.base) / 2.0;
        let loads = (0..t_len)
            .map(|t| {
                let phase = 2.0 * std::f64::consts::PI * (t as f64) / self.period as f64;
                // Trough at t = 0 (night), peak mid-period (afternoon).
                let clean = mid - amp * phase.cos();
                let jitter = 1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0);
                (clean * jitter).max(0.0)
            })
            .collect();
        Trace::new(format!("diurnal(seed={seed})"), loads)
    }
}

/// Bursty trace: a two-state modulated process (calm/burst) with
/// geometrically distributed sojourn times — an MMPP-flavoured generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bursty {
    /// Mean load in the calm state.
    pub calm_load: f64,
    /// Mean load in the burst state.
    pub burst_load: f64,
    /// Per-slot probability of entering a burst.
    pub p_enter: f64,
    /// Per-slot probability of leaving a burst.
    pub p_exit: f64,
    /// Relative load jitter in each slot.
    pub jitter: f64,
}

impl Default for Bursty {
    fn default() -> Self {
        Self {
            calm_load: 3.0,
            burst_load: 14.0,
            p_enter: 0.03,
            p_exit: 0.15,
            jitter: 0.15,
        }
    }
}

impl Bursty {
    /// Generate `t_len` slots.
    pub fn generate(&self, t_len: usize, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut bursting = false;
        let loads = (0..t_len)
            .map(|_| {
                let flip: f64 = rng.gen();
                if bursting {
                    if flip < self.p_exit {
                        bursting = false;
                    }
                } else if flip < self.p_enter {
                    bursting = true;
                }
                let base = if bursting {
                    self.burst_load
                } else {
                    self.calm_load
                };
                let j = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                (base * j).max(0.0)
            })
            .collect();
        Trace::new(format!("bursty(seed={seed})"), loads)
    }
}

/// Sparse spikes over a low floor — models flash crowds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Spiky {
    /// Background load.
    pub floor: f64,
    /// Spike height.
    pub height: f64,
    /// Per-slot spike probability.
    pub p_spike: f64,
    /// Spike duration in slots.
    pub width: usize,
}

impl Default for Spiky {
    fn default() -> Self {
        Self {
            floor: 1.0,
            height: 12.0,
            p_spike: 0.02,
            width: 3,
        }
    }
}

impl Spiky {
    /// Generate `t_len` slots.
    pub fn generate(&self, t_len: usize, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut loads = vec![self.floor; t_len];
        for t in 0..t_len {
            if rng.gen::<f64>() < self.p_spike {
                let end = (t + self.width).min(t_len);
                for load in &mut loads[t..end] {
                    *load = load.max(self.height);
                }
            }
        }
        Trace::new(format!("spiky(seed={seed})"), loads)
    }
}

/// Poisson arrivals averaged per slot (CLT-smoothed): load is
/// `Normal(rate, rate/samples)` clipped at 0 — a cheap stand-in for a
/// per-slot mean of many Poisson arrivals.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stationary {
    /// Mean load.
    pub rate: f64,
    /// Effective number of aggregated arrival samples per slot.
    pub samples: f64,
}

impl Default for Stationary {
    fn default() -> Self {
        Self {
            rate: 6.0,
            samples: 30.0,
        }
    }
}

impl Stationary {
    /// Generate `t_len` slots.
    pub fn generate(&self, t_len: usize, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sd = (self.rate / self.samples).sqrt();
        let normal = NormalApprox { sd };
        let loads = (0..t_len)
            .map(|_| (self.rate + normal.sample(&mut rng)).max(0.0))
            .collect();
        Trace::new(format!("stationary(seed={seed})"), loads)
    }
}

/// Zero-mean approximately-normal noise via the sum of uniforms
/// (Irwin–Hall with 12 terms), avoiding a dependency on `rand_distr`.
struct NormalApprox {
    sd: f64,
}

impl Distribution<f64> for NormalApprox {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        s * self.sd
    }
}

/// Weekly pattern: weekday diurnal cycles plus quieter weekends — the shape
/// of enterprise traces like the ones Lin et al. evaluated on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Weekly {
    /// The weekday diurnal component.
    pub weekday: Diurnal,
    /// Multiplier applied on the two weekend days (e.g. `0.4`).
    pub weekend_factor: f64,
}

impl Default for Weekly {
    fn default() -> Self {
        Self {
            weekday: Diurnal::default(),
            weekend_factor: 0.4,
        }
    }
}

impl Weekly {
    /// Generate `t_len` slots; the week starts on a Monday.
    pub fn generate(&self, t_len: usize, seed: u64) -> Trace {
        let base = self.weekday.generate(t_len, seed);
        let per_day = self.weekday.period;
        let loads = base
            .loads
            .iter()
            .enumerate()
            .map(|(t, &l)| {
                let day = (t / per_day) % 7;
                if day >= 5 {
                    l * self.weekend_factor
                } else {
                    l
                }
            })
            .collect();
        Trace::new(format!("weekly(seed={seed})"), loads)
    }
}

impl Trace {
    /// Concatenate two traces.
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut loads = self.loads.clone();
        loads.extend_from_slice(&other.loads);
        Trace::new(format!("{}+{}", self.label, other.label), loads)
    }

    /// Downsample by averaging consecutive blocks of `factor` slots (the
    /// trailing partial block is averaged too). `factor >= 1`.
    pub fn downsample(&self, factor: usize) -> Trace {
        assert!(factor >= 1);
        let loads = self
            .loads
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        Trace::new(format!("{}/{}x", self.label, factor), loads)
    }

    /// Pointwise sum of two traces (shorter one implicitly zero-padded).
    pub fn overlay(&self, other: &Trace) -> Trace {
        let n = self.len().max(other.len());
        let loads = (0..n)
            .map(|t| {
                self.loads.get(t).copied().unwrap_or(0.0)
                    + other.loads.get(t).copied().unwrap_or(0.0)
            })
            .collect();
        Trace::new(format!("{}|{}", self.label, other.label), loads)
    }
}

/// The standard corpus used by tests, benches and the experiment harness:
/// one trace per generator family, including the weekly enterprise shape.
pub fn standard_corpus(t_len: usize, seed: u64) -> Vec<Trace> {
    vec![
        Diurnal::default().generate(t_len, seed),
        Bursty::default().generate(t_len, seed.wrapping_add(1)),
        Spiky::default().generate(t_len, seed.wrapping_add(2)),
        Stationary::default().generate(t_len, seed.wrapping_add(3)),
        Weekly::default().generate(t_len, seed.wrapping_add(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_is_periodic_and_bounded() {
        let d = Diurnal {
            period: 24,
            base: 2.0,
            peak: 10.0,
            noise: 0.0,
        };
        let tr = d.generate(96, 7);
        assert_eq!(tr.len(), 96);
        // Noise-free: slot t and t+period coincide.
        for t in 0..72 {
            assert!((tr.loads[t] - tr.loads[t + 24]).abs() < 1e-9);
        }
        assert!(tr.peak() <= 10.0 + 1e-9);
        assert!(tr.loads.iter().copied().fold(f64::INFINITY, f64::min) >= 2.0 - 1e-9);
    }

    #[test]
    fn diurnal_noise_is_seeded() {
        let d = Diurnal::default();
        let a = d.generate(100, 1);
        let b = d.generate(100, 1);
        let c = d.generate(100, 2);
        assert_eq!(a, b);
        assert_ne!(a.loads, c.loads);
    }

    #[test]
    fn bursty_visits_both_states() {
        let tr = Bursty::default().generate(4000, 11);
        let hi = tr.loads.iter().filter(|&&l| l > 8.0).count();
        let lo = tr.loads.iter().filter(|&&l| l < 5.0).count();
        assert!(hi > 100, "bursts should occur: {hi}");
        assert!(lo > 1000, "calm should dominate: {lo}");
    }

    #[test]
    fn spiky_has_flat_floor_and_spikes() {
        let tr = Spiky::default().generate(2000, 3);
        let floor = tr.loads.iter().filter(|&&l| (l - 1.0).abs() < 1e-9).count();
        let spikes = tr.loads.iter().filter(|&&l| l > 10.0).count();
        assert!(floor > 1000);
        assert!(spikes > 10);
    }

    #[test]
    fn stationary_concentrates_near_rate() {
        let tr = Stationary::default().generate(5000, 9);
        assert!((tr.mean() - 6.0).abs() < 0.2);
        assert!(tr.peak_to_mean() < 1.6);
    }

    #[test]
    fn peak_to_mean_and_scaling() {
        let tr = Trace::new("t", vec![1.0, 2.0, 3.0, 2.0]);
        assert!((tr.mean() - 2.0).abs() < 1e-12);
        assert!((tr.peak_to_mean() - 1.5).abs() < 1e-12);
        let s = tr.scaled_to_peak(6.0);
        assert!((s.peak() - 6.0).abs() < 1e-12);
        assert!((s.peak_to_mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clamped_respects_cap() {
        let tr = Trace::new("t", vec![0.5, 5.0, -1.0]).clamped(2.0);
        assert_eq!(tr.loads, vec![0.5, 2.0, 0.0]);
    }

    #[test]
    fn empty_trace_statistics() {
        let tr = Trace::new("e", vec![]);
        assert!(tr.is_empty());
        assert_eq!(tr.mean(), 0.0);
        assert_eq!(tr.peak_to_mean(), 1.0);
    }

    #[test]
    fn corpus_has_expected_members() {
        let c = standard_corpus(200, 5);
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|t| t.len() == 200));
        assert!(c.iter().any(|t| t.label.starts_with("weekly")));
    }

    #[test]
    fn peak_to_mean_is_always_finite() {
        // All-zero load: flat, ratio 1.
        assert_eq!(Trace::new("z", vec![0.0; 8]).peak_to_mean(), 1.0);
        // Degenerate zero-mean trace with a nonzero peak: the ratio is
        // undefined; it must come back 0, never inf (inf renders as
        // `null` in JSON and breaks stats round trips).
        let degenerate = Trace::new("d", vec![-1.0, 1.0]);
        assert_eq!(degenerate.peak_to_mean(), 0.0);
        assert!(degenerate.peak_to_mean().is_finite());
    }

    #[test]
    fn weekly_weekends_are_quieter() {
        let w = Weekly {
            weekday: Diurnal {
                period: 24,
                base: 2.0,
                peak: 10.0,
                noise: 0.0,
            },
            weekend_factor: 0.5,
        };
        let tr = w.generate(24 * 7, 3);
        // Same phase, day 0 (Mon) vs day 5 (Sat): factor 0.5.
        for h in 0..24 {
            let mon = tr.loads[h];
            let sat = tr.loads[24 * 5 + h];
            assert!((sat - 0.5 * mon).abs() < 1e-9, "hour {h}");
        }
    }

    #[test]
    fn concat_and_overlay() {
        let a = Trace::new("a", vec![1.0, 2.0]);
        let b = Trace::new("b", vec![3.0]);
        assert_eq!(a.concat(&b).loads, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.overlay(&b).loads, vec![4.0, 2.0]);
    }

    #[test]
    fn downsample_averages_blocks() {
        let a = Trace::new("a", vec![1.0, 3.0, 5.0, 7.0, 10.0]);
        let d = a.downsample(2);
        assert_eq!(d.loads, vec![2.0, 6.0, 10.0]);
        // factor 1 is the identity on loads.
        assert_eq!(a.downsample(1).loads, a.loads);
    }
}
