//! Trace import/export: JSON (via serde), a minimal CSV dialect
//! (`slot,load` with a header line), and a compact CRC-guarded binary
//! format (`RSDT`) for large traces on the binary ingest path — so
//! externally recorded data-center traces can be dropped into the
//! harness in whichever shape they arrive.

use crate::traces::Trace;
use std::io::{BufRead, BufReader, Read, Write};

/// Magic bytes opening a binary trace file: ASCII `RSDT`.
pub const BINARY_MAGIC: [u8; 4] = *b"RSDT";

/// Current binary trace format version.
pub const BINARY_VERSION: u8 = 1;

/// Write a trace as CSV (`slot,load`).
pub fn write_csv<W: Write>(w: &mut W, trace: &Trace) -> std::io::Result<()> {
    writeln!(w, "slot,load")?;
    for (t, l) in trace.loads.iter().enumerate() {
        writeln!(w, "{t},{l}")?;
    }
    Ok(())
}

/// Read a trace from CSV. Accepts an optional `slot,load` header; the slot
/// column is ignored (rows are taken in order). Blank lines are skipped.
pub fn read_csv<R: Read>(r: R, label: impl Into<String>) -> std::io::Result<Trace> {
    let reader = BufReader::new(r);
    let mut loads = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let first = fields.next().unwrap_or("");
        let second = fields.next();
        if lineno == 0 && first.eq_ignore_ascii_case("slot") {
            continue;
        }
        let raw = second.unwrap_or(first);
        let v: f64 = raw.trim().parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: bad load {raw:?}: {e}", lineno + 1),
            )
        })?;
        if !(v.is_finite() && v >= 0.0) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: load must be finite and >= 0, got {v}", lineno + 1),
            ));
        }
        loads.push(v);
    }
    Ok(Trace::new(label, loads))
}

/// CRC-32 (IEEE polynomial, bit-reflected) — the checksum the engine's
/// wire framing and WAL use, computed table-free here so the workloads
/// crate stays dependency-free.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// True when `data` opens with the binary trace magic — the sniff the
/// CLI and scenario file sources use to pick a decoder.
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == BINARY_MAGIC
}

/// Write a trace in the binary format:
///
/// ```text
/// "RSDT" [ver: u8] [name_len: u16 LE] [name: UTF-8]
///        [count: u32 LE] [count x load: f64 LE] [crc: u32 LE]
/// ```
///
/// `crc` is the CRC-32 of everything after the magic (version byte
/// through the last load), so truncation and bit rot are both caught on
/// read.
pub fn write_binary<W: Write>(w: &mut W, trace: &Trace) -> std::io::Result<()> {
    let name = trace.label.as_bytes();
    if name.len() > u16::MAX as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "trace label is {} bytes; the format caps it at 65535",
                name.len()
            ),
        ));
    }
    let count = u32::try_from(trace.loads.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "trace has {} slots; the format caps it at u32",
                trace.loads.len()
            ),
        )
    })?;
    let mut body = Vec::with_capacity(7 + name.len() + trace.loads.len() * 8);
    body.push(BINARY_VERSION);
    body.extend_from_slice(&(name.len() as u16).to_le_bytes());
    body.extend_from_slice(name);
    body.extend_from_slice(&count.to_le_bytes());
    for &l in &trace.loads {
        body.extend_from_slice(&l.to_bits().to_le_bytes());
    }
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&body)?;
    w.write_all(&crc32(&body).to_le_bytes())
}

/// Read a trace written by [`write_binary`]. Every violation — missing
/// magic, unknown version, truncation, trailing bytes, CRC mismatch, or
/// a non-finite/negative load — is a typed `InvalidData` error, never a
/// panic.
pub fn read_binary(data: &[u8]) -> std::io::Result<Trace> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    if !is_binary(data) {
        return Err(bad("not a binary trace: missing RSDT magic".into()));
    }
    if data.len() < 4 + 1 + 2 + 4 + 4 {
        return Err(bad(format!("binary trace truncated: {} bytes", data.len())));
    }
    let (body, tail) = data[4..].split_at(data.len() - 8);
    let expect = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    let got = crc32(body);
    if got != expect {
        return Err(bad(format!(
            "binary trace crc mismatch: trailer {expect:#010x}, payload {got:#010x}"
        )));
    }
    if body[0] != BINARY_VERSION {
        return Err(bad(format!(
            "unsupported binary trace version {} (this build reads {BINARY_VERSION})",
            body[0]
        )));
    }
    let name_len = u16::from_le_bytes([body[1], body[2]]) as usize;
    let rest = &body[3..];
    if rest.len() < name_len + 4 {
        return Err(bad("binary trace truncated inside its header".into()));
    }
    let label = std::str::from_utf8(&rest[..name_len])
        .map_err(|e| bad(format!("binary trace label is not UTF-8: {e}")))?
        .to_string();
    let rest = &rest[name_len..];
    let count = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    let rest = &rest[4..];
    if rest.len() != count * 8 {
        return Err(bad(format!(
            "binary trace declares {count} loads but carries {} bytes of them",
            rest.len()
        )));
    }
    let mut loads = Vec::with_capacity(count);
    for (i, chunk) in rest.chunks_exact(8).enumerate() {
        let v = f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        if !(v.is_finite() && v >= 0.0) {
            return Err(bad(format!(
                "slot {i}: load must be finite and >= 0, got {v}"
            )));
        }
        loads.push(v);
    }
    Ok(Trace::new(label, loads))
}

/// Serialize a trace to JSON.
pub fn to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string_pretty(trace)
}

/// Deserialize a trace from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let tr = Trace::new("t", vec![1.5, 0.0, 3.25]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &tr).unwrap();
        let back = read_csv(&buf[..], "t").unwrap();
        assert_eq!(back.loads, tr.loads);
    }

    #[test]
    fn csv_without_header_and_single_column() {
        let data = "1.0\n2.5\n\n0.5\n";
        let tr = read_csv(data.as_bytes(), "x").unwrap();
        assert_eq!(tr.loads, vec![1.0, 2.5, 0.5]);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("slot,load\n0,abc\n".as_bytes(), "x").is_err());
        assert!(read_csv("0,-1.0\n".as_bytes(), "x").is_err());
        assert!(read_csv("0,inf\n".as_bytes(), "x").is_err());
    }

    #[test]
    fn json_round_trip() {
        let tr = Trace::new("label", vec![1.0, 2.0]);
        let s = to_json(&tr).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn binary_round_trip_preserves_exact_bits() {
        let tr = Trace::new("binary-π", vec![0.0, 1.5, std::f64::consts::PI, 1e300]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &tr).unwrap();
        assert!(is_binary(&buf));
        let back = read_binary(&buf).unwrap();
        assert_eq!(back.label, tr.label);
        // Bit-exact, not approximately equal: the binary format must not
        // round-trip loads through text.
        let bits = |t: &Trace| t.loads.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&tr));
    }

    #[test]
    fn binary_rejects_corruption_with_typed_errors() {
        let tr = Trace::new("t", vec![1.0, 2.0, 3.0]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &tr).unwrap();

        let flipped = {
            let mut b = buf.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
            b
        };
        let err = read_binary(&flipped).unwrap_err().to_string();
        assert!(err.contains("crc mismatch"), "{err}");

        let err = read_binary(&buf[..buf.len() - 3]).unwrap_err().to_string();
        assert!(err.contains("crc mismatch"), "{err}");

        assert!(read_binary(b"RSDT").is_err());
        assert!(read_binary(b"not a trace")
            .unwrap_err()
            .to_string()
            .contains("magic"));

        // A negative load fails validation even when the CRC is intact.
        let mut evil = Trace::new("t", vec![1.0]);
        evil.loads[0] = -2.0;
        let mut buf = Vec::new();
        write_binary(&mut buf, &evil).unwrap();
        let err = read_binary(&buf).unwrap_err().to_string();
        assert!(err.contains("must be finite and >= 0"), "{err}");
    }
}
