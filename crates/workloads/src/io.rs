//! Trace import/export: JSON (via serde) and a minimal CSV dialect
//! (`slot,load` with a header line), so externally recorded data-center
//! traces can be dropped into the harness.

use crate::traces::Trace;
use std::io::{BufRead, BufReader, Read, Write};

/// Write a trace as CSV (`slot,load`).
pub fn write_csv<W: Write>(w: &mut W, trace: &Trace) -> std::io::Result<()> {
    writeln!(w, "slot,load")?;
    for (t, l) in trace.loads.iter().enumerate() {
        writeln!(w, "{t},{l}")?;
    }
    Ok(())
}

/// Read a trace from CSV. Accepts an optional `slot,load` header; the slot
/// column is ignored (rows are taken in order). Blank lines are skipped.
pub fn read_csv<R: Read>(r: R, label: impl Into<String>) -> std::io::Result<Trace> {
    let reader = BufReader::new(r);
    let mut loads = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let first = fields.next().unwrap_or("");
        let second = fields.next();
        if lineno == 0 && first.eq_ignore_ascii_case("slot") {
            continue;
        }
        let raw = second.unwrap_or(first);
        let v: f64 = raw.trim().parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: bad load {raw:?}: {e}", lineno + 1),
            )
        })?;
        if !(v.is_finite() && v >= 0.0) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: load must be finite and >= 0, got {v}", lineno + 1),
            ));
        }
        loads.push(v);
    }
    Ok(Trace::new(label, loads))
}

/// Serialize a trace to JSON.
pub fn to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string_pretty(trace)
}

/// Deserialize a trace from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let tr = Trace::new("t", vec![1.5, 0.0, 3.25]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &tr).unwrap();
        let back = read_csv(&buf[..], "t").unwrap();
        assert_eq!(back.loads, tr.loads);
    }

    #[test]
    fn csv_without_header_and_single_column() {
        let data = "1.0\n2.5\n\n0.5\n";
        let tr = read_csv(data.as_bytes(), "x").unwrap();
        assert_eq!(tr.loads, vec![1.0, 2.5, 0.5]);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("slot,load\n0,abc\n".as_bytes(), "x").is_err());
        assert!(read_csv("0,-1.0\n".as_bytes(), "x").is_err());
        assert!(read_csv("0,inf\n".as_bytes(), "x").is_err());
    }

    #[test]
    fn json_round_trip() {
        let tr = Trace::new("label", vec![1.0, 2.0]);
        let s = to_json(&tr).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(back, tr);
    }
}
