//! Build optimization instances from workload traces.
//!
//! The bridge between the simulator world (loads, energy, delay) and the
//! abstract problem (convex `f_t`, `beta`): exactly the modelling step of
//! Lin et al. [22, 24] that this paper inherits.

use crate::traces::Trace;
use rsdc_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Cost-model configuration for turning a trace into an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-server energy/delay parameters.
    pub server: ServerParams,
    /// Penalty per unit of unserved load when `x < lambda` (soft capacity).
    pub overload: f64,
    /// Power-up cost `beta`.
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            server: ServerParams::default(),
            overload: 20.0,
            beta: 6.0,
        }
    }
}

impl CostModel {
    /// Build a general-model instance over `m` servers from a trace.
    pub fn instance(&self, m: u32, trace: &Trace) -> Instance {
        let costs = trace
            .loads
            .iter()
            .map(|&lambda| Cost::Server {
                lambda,
                params: self.server,
                overload: self.overload,
            })
            .collect();
        Instance::new(m, self.beta, costs).expect("valid cost model")
    }

    /// Build a restricted-model instance (hard constraint `x_t >= lambda_t`)
    /// from a trace; loads are clamped to `m`.
    pub fn restricted(&self, m: u32, trace: &Trace) -> RestrictedInstance {
        let lambdas = trace
            .loads
            .iter()
            .map(|&l| l.clamp(0.0, m as f64))
            .collect();
        RestrictedInstance::new(m, self.beta, Unit::Server(self.server), lambdas)
            .expect("valid restricted model")
    }

    /// Cost of static provisioning: keep `x` servers active for the whole
    /// trace (the "no right-sizing" baseline of the Lin et al. case study).
    pub fn static_cost(&self, m: u32, trace: &Trace, x: u32) -> f64 {
        let inst = self.instance(m, trace);
        let xs = Schedule(vec![x; trace.len()]);
        cost(&inst, &xs)
    }

    /// Cost of the best static provisioning level (grid search over
    /// `0..=m`).
    pub fn best_static_cost(&self, m: u32, trace: &Trace) -> (u32, f64) {
        let inst = self.instance(m, trace);
        let mut best = (0u32, f64::INFINITY);
        for x in 0..=m {
            let xs = Schedule(vec![x; trace.len()]);
            let c = cost(&inst, &xs);
            if c < best.1 {
                best = (x, c);
            }
        }
        best
    }
}

/// Suggested fleet size for a trace: enough servers to hold the peak at
/// the given utilisation target, at least 1.
pub fn fleet_size(trace: &Trace, target_utilisation: f64) -> u32 {
    assert!(target_utilisation > 0.0 && target_utilisation <= 1.0);
    ((trace.peak() / target_utilisation).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::Diurnal;

    fn trace() -> Trace {
        Diurnal {
            period: 12,
            base: 1.0,
            peak: 6.0,
            noise: 0.0,
        }
        .generate(36, 1)
    }

    #[test]
    fn instance_has_one_cost_per_slot() {
        let tr = trace();
        let inst = CostModel::default().instance(8, &tr);
        assert_eq!(inst.horizon(), tr.len());
        assert_eq!(inst.m(), 8);
        // All costs convex.
        for t in 1..=inst.horizon() {
            inst.cost_fn(t).check_convex(8).unwrap();
        }
    }

    #[test]
    fn restricted_clamps_loads() {
        let tr = Trace::new("t", vec![2.0, 9.0]);
        let r = CostModel::default().restricted(4, &tr);
        assert_eq!(r.lambdas, vec![2.0, 4.0]);
    }

    #[test]
    fn fleet_size_covers_peak() {
        let tr = trace();
        let m = fleet_size(&tr, 0.8);
        assert!(m as f64 * 0.8 >= tr.peak());
        assert!(fleet_size(&Trace::new("z", vec![0.0]), 0.5) >= 1);
    }

    #[test]
    fn right_sizing_beats_static_on_diurnal() {
        // The Lin et al. headline: dynamic right-sizing saves versus the
        // best static provisioning on strongly diurnal load.
        let tr = trace();
        let model = CostModel::default();
        let m = fleet_size(&tr, 0.8);
        let inst = model.instance(m, &tr);
        let opt = rsdc_offline::dp::solve_cost_only(&inst);
        let (_, static_cost) = model.best_static_cost(m, &tr);
        assert!(
            opt < static_cost,
            "OPT {opt} should beat best static {static_cost}"
        );
    }

    #[test]
    fn static_cost_monotone_in_obvious_cases() {
        let tr = Trace::new("t", vec![0.0; 10]);
        let model = CostModel::default();
        // With zero load, fewer servers is always cheaper.
        let c0 = model.static_cost(4, &tr, 0);
        let c4 = model.static_cost(4, &tr, 4);
        assert!(c0 < c4);
        assert_eq!(c0, 0.0);
    }
}
