//! # rsdc-workloads — traces, cost models and random instances
//!
//! The workload substrate for the right-sizing experiments:
//!
//! * [`traces`] — synthetic workload generators (diurnal, bursty, spiky,
//!   stationary) substituting for the proprietary traces of Lin et al.;
//! * [`builder`] — trace → instance conversion (energy + delay cost model,
//!   static-provisioning baselines);
//! * [`random`] — arbitrary random convex instances for property tests and
//!   benchmarks;
//! * [`io`] — CSV/JSON trace import/export.

#![warn(missing_docs)]

pub mod builder;
pub mod io;
pub mod random;
pub mod stats;
pub mod traces;

pub use builder::{fleet_size, CostModel};
pub use stats::{trace_stats, TraceStats};
pub use traces::{standard_corpus, Bursty, Diurnal, Spiky, Stationary, Trace, Weekly};
