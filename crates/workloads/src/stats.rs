//! Trace statistics: the shape descriptors used to match synthetic traces
//! to the qualitative properties of the (proprietary) originals, and to
//! report workload characteristics in EXPERIMENTS.md.

use crate::traces::Trace;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of slots.
    pub len: usize,
    /// Mean load.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum load.
    pub min: f64,
    /// Maximum load.
    pub max: f64,
    /// Peak-to-mean ratio.
    pub peak_to_mean: f64,
    /// Coefficient of variation (std/mean; 0 for zero-mean traces).
    pub cv: f64,
    /// Lag-1 autocorrelation (0 for traces shorter than 2).
    pub autocorr1: f64,
    /// Mean absolute slot-to-slot change, normalised by the mean
    /// ("burstiness": 0 for constant traces, large for noisy ones).
    pub burstiness: f64,
}

/// Compute all summary statistics.
pub fn trace_stats(tr: &Trace) -> TraceStats {
    let n = tr.len();
    let mean = tr.mean();
    let var = if n == 0 {
        0.0
    } else {
        tr.loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n as f64
    };
    let std_dev = var.sqrt();
    let min = tr.loads.iter().copied().fold(f64::INFINITY, f64::min);
    let min = if min.is_finite() { min } else { 0.0 };
    TraceStats {
        len: n,
        mean,
        std_dev,
        min,
        max: tr.peak(),
        peak_to_mean: tr.peak_to_mean(),
        cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
        autocorr1: autocorrelation(&tr.loads, 1),
        burstiness: burstiness(&tr.loads),
    }
}

/// Lag-`k` autocorrelation; 0 when undefined (short traces or zero
/// variance).
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n <= k || n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = xs
        .windows(k + 1)
        .map(|w| (w[0] - mean) * (w[k] - mean))
        .sum();
    cov / var
}

/// Mean absolute slot-to-slot change normalised by the mean load.
pub fn burstiness(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let step: f64 = xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64;
    step / mean
}

/// Empirical quantile (linear interpolation between order statistics);
/// `q in [0, 1]`. Returns 0 for empty inputs.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN loads"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    if frac == 0.0 || lo + 1 >= sorted.len() {
        sorted[lo]
    } else {
        (1.0 - frac) * sorted[lo] + frac * sorted[lo + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{Bursty, Diurnal, Stationary};

    #[test]
    fn stats_of_constant_trace() {
        let tr = Trace::new("c", vec![5.0; 10]);
        let s = trace_stats(&tr);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.peak_to_mean, 1.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.autocorr1, 0.0); // zero variance
        assert_eq!(s.burstiness, 0.0);
    }

    #[test]
    fn diurnal_is_strongly_autocorrelated() {
        let tr = Diurnal {
            period: 48,
            base: 1.0,
            peak: 10.0,
            noise: 0.02,
        }
        .generate(480, 1);
        let s = trace_stats(&tr);
        assert!(s.autocorr1 > 0.9, "smooth sinusoid: got {}", s.autocorr1);
        assert!(s.burstiness < 0.2);
    }

    #[test]
    fn stationary_is_weakly_autocorrelated() {
        let tr = Stationary::default().generate(4000, 2);
        let s = trace_stats(&tr);
        assert!(s.autocorr1.abs() < 0.1, "iid noise: got {}", s.autocorr1);
    }

    #[test]
    fn bursty_is_burstier_than_diurnal() {
        let d = trace_stats(&Diurnal::default().generate(2000, 3));
        let b = trace_stats(&Bursty::default().generate(2000, 3));
        assert!(b.burstiness > d.burstiness);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
        // Out-of-range q is clamped.
        assert_eq!(quantile(&xs, 2.0), 4.0);
    }

    #[test]
    fn autocorrelation_of_alternating_signal() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(burstiness(&[1.0]), 0.0);
        assert_eq!(burstiness(&[0.0, 0.0]), 0.0);
        let s = trace_stats(&Trace::new("e", vec![]));
        assert_eq!(s.len, 0);
        assert_eq!(s.min, 0.0);
    }
}
