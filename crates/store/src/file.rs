//! [`FileStore`]: the real, file-backed durability backend.
//!
//! Layout inside the data directory:
//!
//! ```text
//! ckpt-00000000000000000003.ckpt     one framed checkpoint document
//! wal-00000000000000000003-0000.wal  shard 0's records since capture 3
//! wal-00000000000000000003-0001.wal  shard 1's records since capture 3
//! ```
//!
//! Sequence numbers are zero-padded so lexicographic order equals numeric
//! order, and they are **never reused**: [`begin_checkpoint`] hands out a
//! sequence strictly greater than anything committed, begun, or present on
//! disk. An aborted checkpoint attempt (crash or failed commit after the
//! shards rotated) therefore leaves its segments behind as ordinary WAL
//! history — the next attempt rotates to a *fresh* sequence instead of
//! appending to files whose records a later checkpoint already covers,
//! which would replay them twice.
//!
//! Checkpoints are published atomically (write to `*.tmp`, `fsync`,
//! rename, `fsync` the directory); committing checkpoint `seq` then
//! deletes every file with a smaller sequence — the log-truncation step —
//! which is safe because every record in those files was applied before
//! `seq`'s capture and is thus part of the committed document.
//!
//! Appends are per-shard: the writer table is a brief map lookup, and the
//! `write` + batched `fsync` happen under that shard's own lock, so shard
//! threads journal in parallel.
//!
//! [`begin_checkpoint`]: crate::Durability::begin_checkpoint

use crate::wal;
use crate::{CheckpointBlob, Durability, Recovery, StoreError, StoreStats, WalSegment};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tuning knobs for [`FileStore`].
#[derive(Debug, Clone, Copy)]
pub struct FileStoreConfig {
    /// `fsync` a shard's WAL after every `sync_every` appended records.
    /// `1` syncs every record (maximum durability, slowest); `0` never
    /// syncs on append (the OS page cache decides; rotation, checkpoints
    /// and drop still sync). Every append is `write(2)`-flushed either
    /// way, so an in-process crash loses nothing — batching only risks the
    /// tail on a whole-machine failure.
    pub sync_every: u64,
}

impl Default for FileStoreConfig {
    fn default() -> Self {
        FileStoreConfig { sync_every: 32 }
    }
}

struct ShardWal {
    file: File,
    unsynced: u64,
    /// Checkpoint epoch of the segment this writer appends to. Committing
    /// a newer checkpoint evicts writers from older epochs: their files
    /// are deleted by the log truncation, and a cached handle left behind
    /// would make later appends for that shard write into an unlinked
    /// inode (silently unrecoverable) — the shrink-then-regrow rebalance
    /// pattern hits exactly this, since a shard index can go idle for an
    /// epoch and come back.
    seq: u64,
}

/// Checkpoint sequences and `(seq, shard)` WAL segment keys found in the
/// data directory, each sorted ascending.
type DirListing = (Vec<u64>, Vec<(u64, usize)>);

/// Checkpoint-sequence state, kept apart from the writers so appends never
/// contend with sequence bookkeeping.
struct Seqs {
    /// Newest committed checkpoint (0 = none): appends for a shard with no
    /// open writer land in this epoch's segment.
    committed: u64,
    /// High-water mark of every sequence ever handed out or observed on
    /// disk; [`Durability::begin_checkpoint`] always goes above it.
    begun: u64,
}

/// File-backed [`Durability`] backend. Shareable across shard threads:
/// each shard's WAL writer has its own lock, so appends (including their
/// batched `fsync`s) proceed in parallel; only the brief writer-table and
/// sequence lookups are shared.
pub struct FileStore {
    dir: PathBuf,
    cfg: FileStoreConfig,
    seqs: Mutex<Seqs>,
    writers: Mutex<HashMap<usize, Arc<Mutex<ShardWal>>>>,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    syncs: AtomicU64,
}

fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.ckpt")
}

fn wal_name(seq: u64, shard: usize) -> String {
    format!("wal-{seq:020}-{shard:04}.wal")
}

fn parse_ckpt_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

fn parse_wal_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    let (seq, shard) = rest.split_once('-')?;
    Some((seq.parse().ok()?, shard.parse().ok()?))
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Continue an existing segment (or start it) — the lazy-open path for
/// appends into the committed epoch.
fn open_writer_append(dir: &Path, seq: u64, shard: usize) -> Result<ShardWal, StoreError> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(wal_name(seq, shard)))?;
    Ok(ShardWal {
        file,
        unsynced: 0,
        seq,
    })
}

/// Start a brand-new segment at a rotation point. `create_new` enforces
/// the never-reuse-a-sequence invariant: an existing file here means the
/// rotation protocol was violated.
fn open_writer_fresh(dir: &Path, seq: u64, shard: usize) -> Result<ShardWal, StoreError> {
    let file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(dir.join(wal_name(seq, shard)))?;
    Ok(ShardWal {
        file,
        unsynced: 0,
        seq,
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FileStore {
    /// Open (creating if needed) a store over `dir`. Positions appends on
    /// the newest valid checkpoint's epoch; call
    /// [`recover`](Durability::recover) before appending to a directory
    /// that already holds state, so torn tails are repaired first.
    pub fn open(dir: impl Into<PathBuf>, cfg: FileStoreConfig) -> Result<FileStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = FileStore {
            dir,
            cfg,
            seqs: Mutex::new(Seqs {
                committed: 0,
                begun: 0,
            }),
            writers: Mutex::new(HashMap::new()),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        };
        let (ckpt, _) = store.newest_valid_checkpoint()?;
        let committed = ckpt.map(|c| c.seq).unwrap_or(0);
        let mut seqs = lock(&store.seqs);
        seqs.committed = committed;
        seqs.begun = committed.max(store.max_seq_on_disk()?);
        drop(seqs);
        Ok(store)
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn list(&self) -> Result<DirListing, StoreError> {
        let mut ckpts = Vec::new();
        let mut wals = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_ckpt_name(name) {
                ckpts.push(seq);
            } else if let Some(key) = parse_wal_name(name) {
                wals.push(key);
            }
        }
        ckpts.sort_unstable();
        wals.sort_unstable();
        Ok((ckpts, wals))
    }

    /// Highest sequence appearing in any on-disk file name — the floor for
    /// handing out new checkpoint sequences after a restart, so an aborted
    /// attempt's segments are never re-entered.
    fn max_seq_on_disk(&self) -> Result<u64, StoreError> {
        let (ckpts, wals) = self.list()?;
        Ok(ckpts
            .last()
            .copied()
            .unwrap_or(0)
            .max(wals.last().map(|&(seq, _)| seq).unwrap_or(0)))
    }

    /// Newest checkpoint whose document passes frame validation, plus how
    /// many newer-but-invalid checkpoint files were skipped over.
    fn newest_valid_checkpoint(&self) -> Result<(Option<CheckpointBlob>, usize), StoreError> {
        let (ckpts, _) = self.list()?;
        let mut skipped = 0;
        for &seq in ckpts.iter().rev() {
            let (mut records, tail) = wal::read_file(&self.dir.join(ckpt_name(seq)))?;
            if records.len() == 1 && tail.clean() {
                return Ok((
                    Some(CheckpointBlob {
                        seq,
                        payload: records.pop().expect("one record"),
                    }),
                    skipped,
                ));
            }
            skipped += 1;
        }
        Ok((None, skipped))
    }

    fn remove_stale(&self, keep_from: u64) -> Result<(), StoreError> {
        let (ckpts, wals) = self.list()?;
        for seq in ckpts.into_iter().filter(|&s| s < keep_from) {
            std::fs::remove_file(self.dir.join(ckpt_name(seq)))?;
        }
        for (seq, shard) in wals.into_iter().filter(|&(s, _)| s < keep_from) {
            std::fs::remove_file(self.dir.join(wal_name(seq, shard)))?;
        }
        Ok(())
    }

    /// Fsync one shard writer if it has unsynced records.
    fn sync_writer(&self, w: &mut ShardWal) -> Result<(), StoreError> {
        if w.unsynced > 0 {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl Durability for FileStore {
    fn is_durable(&self) -> bool {
        true
    }

    fn has_state(&self) -> Result<bool, StoreError> {
        let (ckpts, wals) = self.list()?;
        Ok(!ckpts.is_empty() || !wals.is_empty())
    }

    fn append(&self, shard: usize, payload: &[u8]) -> Result<(), StoreError> {
        let writer = {
            let mut writers = lock(&self.writers);
            match writers.entry(shard) {
                std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    let seq = lock(&self.seqs).committed;
                    slot.insert(Arc::new(Mutex::new(open_writer_append(
                        &self.dir, seq, shard,
                    )?)))
                    .clone()
                }
            }
        };
        let mut w = lock(&writer);
        w.file.write_all(&wal::frame(payload))?;
        w.unsynced += 1;
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if self.cfg.sync_every > 0 && w.unsynced >= self.cfg.sync_every {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn sync(&self) -> Result<(), StoreError> {
        let writers: Vec<Arc<Mutex<ShardWal>>> = lock(&self.writers).values().cloned().collect();
        for writer in writers {
            self.sync_writer(&mut lock(&writer))?;
        }
        Ok(())
    }

    fn begin_checkpoint(&self) -> Result<u64, StoreError> {
        let mut seqs = lock(&self.seqs);
        let next = seqs.committed.max(seqs.begun) + 1;
        seqs.begun = next;
        Ok(next)
    }

    fn rotate(&self, shard: usize, seq: u64) -> Result<(), StoreError> {
        // Open the fresh segment first; only then retire the old writer,
        // so a failure leaves the shard appending where it was.
        let fresh = Arc::new(Mutex::new(open_writer_fresh(&self.dir, seq, shard)?));
        let old = lock(&self.writers).insert(shard, fresh);
        if let Some(old) = old {
            self.sync_writer(&mut lock(&old))?;
        }
        Ok(())
    }

    fn commit_checkpoint(&self, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        {
            let seqs = lock(&self.seqs);
            if seq <= seqs.committed {
                return Err(StoreError::InvalidState(format!(
                    "checkpoint seq {seq} is not newer than committed seq {}",
                    seqs.committed
                )));
            }
        }
        let tmp = self.dir.join(format!("{}.tmp", ckpt_name(seq)));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&wal::frame(payload))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(ckpt_name(seq)))?;
        sync_dir(&self.dir)?;
        {
            let mut seqs = lock(&self.seqs);
            seqs.committed = seq;
            seqs.begun = seqs.begun.max(seq);
        }
        // Evict writers whose segment the truncation below deletes. A
        // shard that was not rotated into this epoch (its index is idle —
        // e.g. the ring shrank past it) would otherwise keep a handle to
        // an unlinked file and silently lose every record appended through
        // it if the index ever comes back. Dropping the entry makes the
        // next append lazily reopen in the committed epoch.
        lock(&self.writers).retain(|_, w| lock(w).seq >= seq);
        self.remove_stale(seq)
    }

    fn recover(&self) -> Result<Recovery, StoreError> {
        let mut writers = lock(&self.writers);
        writers.clear();
        let (checkpoint, checkpoints_skipped) = self.newest_valid_checkpoint()?;
        let base = checkpoint.as_ref().map(|c| c.seq).unwrap_or(0);
        let (_, wals) = self.list()?;
        let mut segments = Vec::new();
        for (seq, shard) in wals {
            if seq < base {
                continue;
            }
            let path = self.dir.join(wal_name(seq, shard));
            let (records, tail) = wal::read_file(&path)?;
            if !tail.clean() {
                // Repair the torn tail so future appends continue from a
                // valid record boundary.
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(tail.valid_bytes)?;
            }
            segments.push(WalSegment {
                seq,
                shard,
                records,
                dropped_bytes: tail.dropped_bytes,
            });
        }
        segments.sort_by_key(|s| (s.shard, s.seq));
        {
            let mut seqs = lock(&self.seqs);
            seqs.committed = base;
            seqs.begun = seqs.begun.max(base).max(self.max_seq_on_disk()?);
        }
        drop(writers);
        // Clean up epochs the checkpoint scan decided to ignore, plus any
        // orphaned temp files from an interrupted commit.
        self.remove_stale(base)?;
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(Recovery {
            checkpoint,
            segments,
            checkpoints_skipped,
        })
    }

    fn wal_stats(&self) -> Result<StoreStats, StoreError> {
        let (ckpts, wals) = self.list()?;
        let mut wal_bytes = 0;
        for &(seq, shard) in &wals {
            wal_bytes += std::fs::metadata(self.dir.join(wal_name(seq, shard)))?.len();
        }
        Ok(StoreStats {
            durable: true,
            checkpoint_seq: lock(&self.seqs).committed,
            checkpoints: ckpts.len(),
            wal_segments: wals.len(),
            wal_bytes,
            appended_records: self.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            dir: self.dir.display().to_string(),
        })
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        for writer in lock(&self.writers).values() {
            let _ = lock(writer).file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> FileStore {
        let dir = std::env::temp_dir()
            .join("rsdc-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FileStore::open(dir, FileStoreConfig { sync_every: 4 }).unwrap()
    }

    #[test]
    fn append_rotate_commit_recover_cycle() {
        let store = tmp_store("cycle");
        assert!(!store.has_state().unwrap());
        store.append(0, b"a0").unwrap();
        store.append(1, b"b0").unwrap();
        store.append(0, b"a1").unwrap();
        assert!(store.has_state().unwrap());

        // Checkpoint 1: rotate both shards, then commit.
        let seq = store.begin_checkpoint().unwrap();
        assert_eq!(seq, 1);
        store.rotate(0, seq).unwrap();
        store.rotate(1, seq).unwrap();
        store.commit_checkpoint(seq, b"state-at-1").unwrap();
        store.append(0, b"a2").unwrap();

        let rec = store.recover().unwrap();
        let ck = rec.checkpoint.expect("checkpoint");
        assert_eq!(ck.seq, 1);
        assert_eq!(ck.payload, b"state-at-1");
        // Old epoch (seq 0) was truncated away by the commit.
        assert!(rec.segments.iter().all(|s| s.seq == 1));
        let shard0: Vec<_> = rec
            .segments
            .iter()
            .filter(|s| s.shard == 0)
            .flat_map(|s| s.records.clone())
            .collect();
        assert_eq!(shard0, vec![b"a2".to_vec()]);
    }

    #[test]
    fn recover_on_empty_dir_is_empty() {
        let store = tmp_store("empty");
        let rec = store.recover().unwrap();
        assert!(rec.is_empty());
        assert!(rec.checkpoint.is_none());
    }

    #[test]
    fn aborted_checkpoint_never_reuses_its_sequence() {
        // Crash (or failed commit) between rotation and commit: the next
        // attempt must use a fresh sequence, otherwise records journaled
        // after the aborted capture would sit in a segment a later
        // checkpoint covers — and be replayed twice.
        let store = tmp_store("aborted-ckpt");
        store.append(0, b"pre").unwrap();
        let s1 = store.begin_checkpoint().unwrap();
        store.rotate(0, s1).unwrap();
        // ... commit(s1) never happens (crash) ...
        store.append(0, b"mid").unwrap(); // lands in segment s1

        // Retry in-process: a strictly newer sequence.
        let s2 = store.begin_checkpoint().unwrap();
        assert!(s2 > s1, "retry must not reuse {s1}");
        store.rotate(0, s2).unwrap();
        store
            .commit_checkpoint(s2, b"state-incl-pre-and-mid")
            .unwrap();

        // Every record before capture s2 is covered by the checkpoint, so
        // the replayable tail must be empty.
        let rec = store.recover().unwrap();
        assert_eq!(rec.checkpoint.unwrap().seq, s2);
        assert!(
            rec.segments.iter().all(|s| s.records.is_empty()),
            "nothing may replay on top of checkpoint {s2}"
        );
    }

    #[test]
    fn reopened_store_respects_on_disk_sequences() {
        // Same scenario across a process restart: the aborted attempt's
        // segment is on disk, and a reopened store must allocate above it.
        let dir = {
            let store = tmp_store("aborted-reopen");
            store.append(0, b"pre").unwrap();
            let s1 = store.begin_checkpoint().unwrap();
            store.rotate(0, s1).unwrap();
            store.append(0, b"mid").unwrap();
            store.dir().to_path_buf()
            // drop = crash before commit
        };
        let store = FileStore::open(&dir, FileStoreConfig { sync_every: 4 }).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.checkpoint.is_none());
        let replayed: Vec<_> = rec
            .segments
            .iter()
            .flat_map(|s| s.records.clone())
            .collect();
        assert_eq!(replayed, vec![b"pre".to_vec(), b"mid".to_vec()]);
        let s2 = store.begin_checkpoint().unwrap();
        assert_eq!(s2, 2, "must allocate above the aborted segment's seq 1");
        store.rotate(0, s2).unwrap();
        store.commit_checkpoint(s2, b"all").unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.segments.iter().all(|s| s.records.is_empty()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_repaired_and_appends_continue() {
        let store = tmp_store("torn");
        store.append(0, b"one").unwrap();
        store.append(0, b"two").unwrap();
        store.sync().unwrap();
        let path = store.dir().join(wal_name(0, 0));
        // Tear the tail: chop 2 bytes off the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 2)
            .unwrap();

        let rec = store.recover().unwrap();
        assert_eq!(rec.segments.len(), 1);
        assert_eq!(rec.segments[0].records, vec![b"one".to_vec()]);
        assert!(rec.segments[0].dropped_bytes > 0);

        // The tail was truncated, so new appends are reachable again.
        store.append(0, b"three").unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(
            rec.segments[0].records,
            vec![b"one".to_vec(), b"three".to_vec()]
        );
        assert_eq!(rec.segments[0].dropped_bytes, 0);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let store = tmp_store("ckpt-fallback");
        store.append(0, b"r0").unwrap();
        let s1 = store.begin_checkpoint().unwrap();
        store.rotate(0, s1).unwrap();
        store.commit_checkpoint(s1, b"good").unwrap();
        store.append(0, b"r1").unwrap();
        let s2 = store.begin_checkpoint().unwrap();
        store.rotate(0, s2).unwrap();
        store.commit_checkpoint(s2, b"bad-soon").unwrap();
        // Corrupt checkpoint 2 on disk.
        let path = store.dir().join(ckpt_name(s2));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let rec = store.recover().unwrap();
        // Checkpoint 1 was deleted when 2 committed, so nothing valid is
        // left — but recovery still returns the surviving WAL tail rather
        // than failing.
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.checkpoints_skipped, 1);
    }

    #[test]
    fn commit_checkpoint_rejects_stale_seq() {
        let store = tmp_store("stale-seq");
        let s = store.begin_checkpoint().unwrap();
        store.rotate(0, s).unwrap();
        store.commit_checkpoint(s, b"one").unwrap();
        assert!(matches!(
            store.commit_checkpoint(s, b"again"),
            Err(StoreError::InvalidState(_))
        ));
    }

    #[test]
    fn stats_track_appends_and_files() {
        let store = tmp_store("stats");
        for i in 0..10u8 {
            store.append(0, &[i; 16]).unwrap();
        }
        let stats = store.wal_stats().unwrap();
        assert!(stats.durable);
        assert_eq!(stats.appended_records, 10);
        assert_eq!(stats.appended_bytes, 160);
        assert_eq!(stats.wal_segments, 1);
        assert!(stats.wal_bytes >= 160);
        assert!(stats.syncs >= 2, "sync_every=4 over 10 records");
    }
}
