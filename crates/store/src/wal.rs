//! Write-ahead-log record framing: length-prefixed, CRC-32-checked records.
//!
//! Every record on disk is `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! The same frame wraps checkpoint documents, so corruption detection is
//! uniform across WAL segments and checkpoint files. Readers stop at the
//! first frame that fails validation and report the valid prefix length, so
//! a torn tail (partial write at crash time) degrades to "replay what was
//! durably written" instead of an unreadable log.

use crate::StoreError;
use std::io::Read;
use std::path::Path;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const HEADER_LEN: usize = 8;

/// Sanity cap on a single record's payload (1 GiB). A larger length field
/// is treated as corruption, not an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 30;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Wrap one payload in the on-disk record frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Where a scan of framed records stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tail {
    /// Bytes of the file covered by valid records.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn or corrupt), zero on a clean file.
    pub dropped_bytes: u64,
}

impl Tail {
    /// True when the file ended exactly on a record boundary.
    pub fn clean(&self) -> bool {
        self.dropped_bytes == 0
    }
}

/// Decode every valid record of `bytes`, stopping at the first invalid
/// frame. Infallible in the I/O sense: corruption shortens the result and
/// shows up in the returned [`Tail`].
pub fn decode_all(bytes: &[u8]) -> (Vec<Vec<u8>>, Tail) {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.len() < HEADER_LEN {
            // A zero-byte remainder is a clean boundary; a short header is
            // a torn write.
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || rest.len() < HEADER_LEN + len {
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != want {
            break;
        }
        records.push(payload.to_vec());
        at += HEADER_LEN + len;
    }
    let tail = Tail {
        valid_bytes: at as u64,
        dropped_bytes: (bytes.len() - at) as u64,
    };
    (records, tail)
}

/// Read and decode every valid record of the file at `path`.
pub fn read_file(path: &Path) -> Result<(Vec<Vec<u8>>, Tail), StoreError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(decode_all(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // The canonical CRC-32 ("123456789") check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut bytes = Vec::new();
        for payload in [&b"alpha"[..], b"", b"a much longer record payload"] {
            bytes.extend_from_slice(&frame(payload));
        }
        let (records, tail) = decode_all(&bytes);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], b"a much longer record payload");
        assert!(tail.clean());
        assert_eq!(tail.valid_bytes, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let mut bytes = frame(b"first");
        let boundary = bytes.len() as u64;
        bytes.extend_from_slice(&frame(b"second")[..7]); // torn mid-header
        let (records, tail) = decode_all(&bytes);
        assert_eq!(records.len(), 1);
        assert_eq!(tail.valid_bytes, boundary);
        assert_eq!(tail.dropped_bytes, 7);
    }

    #[test]
    fn flipped_byte_stops_the_scan() {
        let mut bytes = frame(b"first");
        let boundary = bytes.len() as u64;
        bytes.extend_from_slice(&frame(b"second"));
        bytes.extend_from_slice(&frame(b"third"));
        let idx = boundary as usize + HEADER_LEN + 2;
        bytes[idx] ^= 0x40;
        let (records, tail) = decode_all(&bytes);
        assert_eq!(
            records.len(),
            1,
            "records after the corrupt one are dropped"
        );
        assert_eq!(tail.valid_bytes, boundary);
        assert!(!tail.clean());
    }

    #[test]
    fn absurd_length_field_is_corruption() {
        let mut bytes = frame(b"ok");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let (records, tail) = decode_all(&bytes);
        assert_eq!(records.len(), 1);
        assert!(!tail.clean());
    }
}
