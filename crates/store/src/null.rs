//! The no-op backend: an engine wired to [`NullStore`] behaves exactly like
//! an undurable engine, at zero per-event cost.

use crate::{Durability, Recovery, StoreError, StoreStats};

/// Discards everything. [`is_durable`](Durability::is_durable) returns
/// `false`, which lets callers skip journal serialization entirely — this
/// is the baseline the `store_overhead` bench compares [`FileStore`]
/// against.
///
/// [`FileStore`]: crate::FileStore
#[derive(Debug, Clone, Copy, Default)]
pub struct NullStore;

impl Durability for NullStore {
    fn is_durable(&self) -> bool {
        false
    }

    fn has_state(&self) -> Result<bool, StoreError> {
        Ok(false)
    }

    fn append(&self, _shard: usize, _payload: &[u8]) -> Result<(), StoreError> {
        Ok(())
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn begin_checkpoint(&self) -> Result<u64, StoreError> {
        Ok(0)
    }

    fn rotate(&self, _shard: usize, _seq: u64) -> Result<(), StoreError> {
        Ok(())
    }

    fn commit_checkpoint(&self, _seq: u64, _payload: &[u8]) -> Result<(), StoreError> {
        Ok(())
    }

    fn recover(&self) -> Result<Recovery, StoreError> {
        Ok(Recovery::default())
    }

    fn wal_stats(&self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats::default())
    }
}
