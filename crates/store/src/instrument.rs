//! Observation seam over the [`Durability`] trait.
//!
//! The engine wants WAL append/fsync latency and volume without the store
//! knowing anything about metrics (this crate stays dependency-free and
//! content-agnostic). [`InstrumentedStore`] wraps any backend and reports
//! each durable operation — duration and payload size — to a
//! [`StoreObserver`] the engine supplies. Observation never alters what
//! reaches the inner store, so wrapping is invisible to recovery:
//! byte-for-byte the same WAL and checkpoints are written.

use crate::{Durability, Recovery, StoreError, StoreStats};
use std::sync::Arc;
use std::time::Instant;

/// Which durable operation an observation describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// One WAL record append; `bytes` is the payload length.
    Append,
    /// One explicit fsync of buffered appends.
    Sync,
    /// One committed checkpoint; `bytes` is the document length.
    CommitCheckpoint,
}

/// Receiver for store observations. Implemented by the engine's metrics
/// layer; the store only calls, never reads back.
pub trait StoreObserver: Send + Sync {
    /// One completed operation: its kind, wall time in nanoseconds
    /// (0 when [`timing_enabled`](StoreObserver::timing_enabled) is off),
    /// and the payload bytes involved (0 for [`StoreOp::Sync`]).
    fn observe(&self, op: StoreOp, nanos: u64, bytes: u64);

    /// Whether the wrapper should pay for `Instant::now()` pairs. Volume
    /// counts are reported either way.
    fn timing_enabled(&self) -> bool {
        true
    }
}

/// A [`Durability`] decorator that times and counts the durable
/// operations, forwarding everything to the wrapped store unchanged.
pub struct InstrumentedStore {
    inner: Arc<dyn Durability>,
    observer: Arc<dyn StoreObserver>,
}

impl InstrumentedStore {
    /// Wrap `inner`, reporting operations to `observer`.
    pub fn new(inner: Arc<dyn Durability>, observer: Arc<dyn StoreObserver>) -> InstrumentedStore {
        InstrumentedStore { inner, observer }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn Durability> {
        &self.inner
    }

    fn timed<T>(
        &self,
        op: StoreOp,
        bytes: u64,
        f: impl FnOnce() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        if !self.observer.timing_enabled() {
            let out = f()?;
            self.observer.observe(op, 0, bytes);
            return Ok(out);
        }
        let start = Instant::now();
        let out = f()?;
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.observer.observe(op, nanos, bytes);
        Ok(out)
    }
}

impl Durability for InstrumentedStore {
    fn is_durable(&self) -> bool {
        self.inner.is_durable()
    }

    fn has_state(&self) -> Result<bool, StoreError> {
        self.inner.has_state()
    }

    fn append(&self, shard: usize, payload: &[u8]) -> Result<(), StoreError> {
        self.timed(StoreOp::Append, payload.len() as u64, || {
            self.inner.append(shard, payload)
        })
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.timed(StoreOp::Sync, 0, || self.inner.sync())
    }

    fn begin_checkpoint(&self) -> Result<u64, StoreError> {
        self.inner.begin_checkpoint()
    }

    fn rotate(&self, shard: usize, seq: u64) -> Result<(), StoreError> {
        self.inner.rotate(shard, seq)
    }

    fn commit_checkpoint(&self, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        self.timed(StoreOp::CommitCheckpoint, payload.len() as u64, || {
            self.inner.commit_checkpoint(seq, payload)
        })
    }

    fn recover(&self) -> Result<Recovery, StoreError> {
        self.inner.recover()
    }

    fn wal_stats(&self) -> Result<StoreStats, StoreError> {
        self.inner.wal_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Recorder {
        appends: AtomicU64,
        append_bytes: AtomicU64,
        syncs: AtomicU64,
        checkpoints: AtomicU64,
    }

    impl StoreObserver for Recorder {
        fn observe(&self, op: StoreOp, _nanos: u64, bytes: u64) {
            match op {
                StoreOp::Append => {
                    self.appends.fetch_add(1, Ordering::Relaxed);
                    self.append_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
                StoreOp::Sync => {
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                }
                StoreOp::CommitCheckpoint => {
                    self.checkpoints.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    #[test]
    fn wrapper_counts_and_delegates() {
        let observer = Arc::new(Recorder::default());
        let store = InstrumentedStore::new(Arc::new(NullStore), observer.clone());
        assert!(!store.is_durable());
        store.append(0, b"12345").unwrap();
        store.append(1, b"678").unwrap();
        store.sync().unwrap();
        let seq = store.begin_checkpoint().unwrap();
        store.rotate(0, seq).unwrap();
        store.commit_checkpoint(seq, b"doc").unwrap();
        assert!(store.recover().unwrap().is_empty());
        assert_eq!(observer.appends.load(Ordering::Relaxed), 2);
        assert_eq!(observer.append_bytes.load(Ordering::Relaxed), 8);
        assert_eq!(observer.syncs.load(Ordering::Relaxed), 1);
        assert_eq!(observer.checkpoints.load(Ordering::Relaxed), 1);
    }
}
