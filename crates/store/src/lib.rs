//! # rsdc-store — durable write-ahead log + checkpoint store
//!
//! Durability layer for the [`rsdc-engine`] streaming autoscaler: the
//! engine's whole value is running the Albers–Quedenfeld online policies
//! *continuously*, which means a process restart must not replay history.
//! This crate provides the persistence primitives the engine journals
//! through:
//!
//! * a **write-ahead log**, one append-only file per shard, of
//!   length-prefixed CRC-32-checked records ([`wal`]) with batched
//!   `fsync`s;
//! * periodic **full-state checkpoints** (opaque documents, atomically
//!   published via temp-file + rename + directory sync);
//! * **log truncation**: committing checkpoint `seq` deletes every WAL
//!   segment and checkpoint older than `seq`;
//! * a **recovery scan** that returns the newest valid checkpoint plus the
//!   replayable WAL tail, tolerating torn or corrupted tails by truncating
//!   each segment back to its last valid record boundary.
//!
//! The store is content-agnostic: payloads are opaque bytes. The engine
//! defines what a journal record or checkpoint document contains; this
//! crate only makes them durable. Two backends implement the object-safe
//! [`Durability`] trait: [`FileStore`] (real files) and [`NullStore`]
//! (no-op, for ephemeral engines and as the bench baseline).
//!
//! ## Segment layout
//!
//! A data directory holds `ckpt-<seq>.ckpt` checkpoint files and
//! `wal-<seq>-<shard>.wal` segments. Segment `seq` contains exactly the
//! records journaled *after* checkpoint `seq`'s state capture (shards
//! rotate their WAL at the capture point, so the snapshot/boundary pairing
//! is exact). Recovery therefore replays all segments with
//! `segment seq >= newest checkpoint seq` on top of that checkpoint.
//!
//! [`rsdc-engine`]: ../rsdc_engine/index.html

#![warn(missing_docs)]

pub mod file;
pub mod instrument;
pub mod null;
pub mod wal;

pub use file::{FileStore, FileStoreConfig};
pub use instrument::{InstrumentedStore, StoreObserver, StoreOp};
pub use null::NullStore;

use serde::{Deserialize, Serialize};

/// Errors surfaced by a [`Durability`] backend.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk state failed validation beyond what recovery tolerates.
    Corrupt(String),
    /// The operation does not make sense in the store's current state
    /// (e.g. committing a checkpoint sequence that was never begun).
    InvalidState(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::InvalidState(m) => write!(f, "store state: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The newest valid checkpoint found by [`Durability::recover`].
#[derive(Debug, Clone)]
pub struct CheckpointBlob {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// The opaque checkpoint document.
    pub payload: Vec<u8>,
}

/// One replayable WAL segment: every valid record of one shard's log for
/// one checkpoint epoch, in append order.
#[derive(Debug, Clone)]
pub struct WalSegment {
    /// Checkpoint epoch the segment belongs to.
    pub seq: u64,
    /// Shard that wrote the segment.
    pub shard: usize,
    /// Record payloads in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from a torn or corrupted tail (0 on a clean segment).
    pub dropped_bytes: u64,
}

/// Everything [`Durability::recover`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Newest checkpoint whose document passed frame validation.
    pub checkpoint: Option<CheckpointBlob>,
    /// Replayable segments, sorted by `(shard, seq)` — i.e. already in
    /// per-shard replay order, oldest epoch first.
    pub segments: Vec<WalSegment>,
    /// Checkpoint files that failed validation and were skipped in favour
    /// of an older one.
    pub checkpoints_skipped: usize,
}

impl Recovery {
    /// True when the store held no usable state at all.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.segments.iter().all(|s| s.records.is_empty())
    }
}

/// Point-in-time statistics about the store, serializable for the engine's
/// `wal_stats` wire op.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Whether the backend persists anything (`false` for [`NullStore`]).
    pub durable: bool,
    /// Newest committed checkpoint sequence (0 = none yet).
    pub checkpoint_seq: u64,
    /// Checkpoint files currently on disk.
    pub checkpoints: usize,
    /// WAL segment files currently on disk.
    pub wal_segments: usize,
    /// Total bytes across WAL segment files.
    pub wal_bytes: u64,
    /// Records appended through this handle since it was opened.
    pub appended_records: u64,
    /// Payload bytes appended through this handle since it was opened.
    pub appended_bytes: u64,
    /// `fsync` calls issued for WAL appends through this handle.
    pub syncs: u64,
    /// Data directory (empty for [`NullStore`]).
    pub dir: String,
}

/// Object-safe durability backend the engine journals through.
///
/// Shard workers call [`append`](Durability::append) (journal a batch
/// before applying it) and [`rotate`](Durability::rotate) (at checkpoint
/// capture); the engine handle drives
/// [`begin_checkpoint`](Durability::begin_checkpoint) /
/// [`commit_checkpoint`](Durability::commit_checkpoint) and
/// [`recover`](Durability::recover). Implementations must be safe to share
/// across the shard threads (`Send + Sync`), with `append`/`rotate` calls
/// for a given shard serialized by that shard's own thread.
pub trait Durability: Send + Sync {
    /// True when appends actually persist. Callers may skip serialization
    /// work entirely when this is `false`.
    fn is_durable(&self) -> bool;

    /// True when the store already holds a checkpoint or WAL data — i.e. a
    /// fresh engine should recover instead of starting cold.
    fn has_state(&self) -> Result<bool, StoreError>;

    /// Append one record to `shard`'s current WAL segment. Must be called
    /// *before* the recorded mutation is applied.
    fn append(&self, shard: usize, payload: &[u8]) -> Result<(), StoreError>;

    /// Force every buffered append to stable storage.
    fn sync(&self) -> Result<(), StoreError>;

    /// Reserve the next checkpoint sequence number.
    fn begin_checkpoint(&self) -> Result<u64, StoreError>;

    /// Switch `shard`'s WAL to the segment for checkpoint `seq`. Called by
    /// the shard thread at the exact point it captures its snapshot, so
    /// records before/after the capture land in the old/new segment.
    fn rotate(&self, shard: usize, seq: u64) -> Result<(), StoreError>;

    /// Durably publish checkpoint `seq` (atomic: temp file + rename +
    /// directory sync), then truncate the log: delete every checkpoint and
    /// WAL segment older than `seq`.
    fn commit_checkpoint(&self, seq: u64, payload: &[u8]) -> Result<(), StoreError>;

    /// Scan the store: newest valid checkpoint plus the replayable WAL
    /// tail. Repairs torn segment tails (truncates to the last valid
    /// record boundary) so subsequent appends continue from a clean edge.
    fn recover(&self) -> Result<Recovery, StoreError>;

    /// Current statistics.
    fn wal_stats(&self) -> Result<StoreStats, StoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn null_store_is_inert() {
        let s = NullStore;
        assert!(!s.is_durable());
        assert!(!s.has_state().unwrap());
        s.append(0, b"ignored").unwrap();
        let seq = s.begin_checkpoint().unwrap();
        s.rotate(0, seq).unwrap();
        s.commit_checkpoint(seq, b"doc").unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.is_empty());
        let stats = s.wal_stats().unwrap();
        assert!(!stats.durable);
        assert_eq!(stats.checkpoint_seq, 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let stores: Vec<Arc<dyn Durability>> = vec![Arc::new(NullStore)];
        assert!(!stores[0].is_durable());
    }
}
