//! # rsdc-hetero — heterogeneous data-center right-sizing
//!
//! The extension the paper frames as convex function chasing (Section 1):
//! multiple server types with per-type fleet sizes and power-up costs, and
//! jointly convex per-slot operating costs over the configuration lattice.
//!
//! * [`model`] — types, configurations, cost shapes (separable and
//!   aggregate-capacity), schedule cost;
//! * [`offline`] — exact DP over the lattice (small dimension), the ground
//!   truth for heuristics;
//! * [`online`] — the [`online::FrontierDp`] lattice DP (follow the
//!   offline frontier), coordinate-wise LCP, and greedy coordinate
//!   descent;
//! * [`streaming`] — resumable streaming wrappers ([`FleetSpec`],
//!   [`HeteroStream`]) whose incremental state is the DP frontier, with
//!   bit-exact snapshot/restore — how heterogeneous tenants join the
//!   `rsdc-engine` service layer and its checkpoint/recovery cycle.
//!
//! No competitive guarantee is claimed here — the heterogeneous lower
//! bounds are strictly harder (best known upper bounds for chasing convex
//! functions grow with dimension; see Sellke and Argue et al., cited in
//! the paper). The crate exists so the homogeneous theory can be compared
//! against its natural generalization (experiment E16).

#![warn(missing_docs)]

pub mod model;
pub mod offline;
pub mod online;
pub mod streaming;

pub use model::{Config, HCost, HInstance, ServerType};
pub use offline::{solve, HSolution};
pub use online::{CoordinateLcp, FrontierDp, GreedyConfig};
pub use streaming::{FleetSpec, HeteroAlgo, HeteroCommit, HeteroSnapshot, HeteroStream};
