//! The heterogeneous problem model.
//!
//! A data center with `D` server *types*: type `d` has `m_d` machines,
//! power-up cost `beta_d`, per-slot energy cost and serving capacity. A
//! configuration is a vector `x = (x_1, ..., x_D)`; the objective is
//!
//! ```text
//! sum_t f_t(x_t) + sum_d beta_d * sum_t (x_{t,d} - x_{t-1,d})^+
//! ```
//!
//! with convex `f_t` over the product lattice. The paper treats this as a
//! special case of convex function chasing (Section 1, related work); this
//! crate provides the exact offline optimum for small dimensions and
//! online heuristics, so the homogeneous theory can be compared against
//! its natural generalization.

use serde::{Deserialize, Serialize};

/// One server type's static parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerType {
    /// Number of machines of this type.
    pub count: u32,
    /// Power-up cost for one machine.
    pub beta: f64,
    /// Energy cost per active machine per slot.
    pub energy: f64,
    /// Serving capacity of one machine (load units per slot).
    pub capacity: f64,
}

/// A configuration: active machines per type.
pub type Config = Vec<u32>;

/// Convex per-slot cost over configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HCost {
    /// Separable: independent 1-D convex costs per type (`V` shapes).
    /// Useful as a decomposition oracle in tests.
    SeparableAbs {
        /// Per-type target.
        targets: Vec<f64>,
        /// Per-type slope.
        slopes: Vec<f64>,
    },
    /// Aggregate-capacity cost: energy plus an M/M/1-flavoured delay on the
    /// pooled capacity, plus a linear overload penalty when capacity does
    /// not cover the load. Convex in `x` (composition of a convex
    /// decreasing function with a linear map).
    Aggregate {
        /// Offered load this slot.
        lambda: f64,
        /// Delay weight.
        delay_weight: f64,
        /// Regulariser keeping the delay finite near saturation.
        delay_eps: f64,
        /// Overload penalty per unserved load unit.
        overload: f64,
    },
}

impl HCost {
    /// Evaluate this cost at configuration `x` of a fleet with the given
    /// `types`. Shared by [`HInstance::eval`] and the streaming layer,
    /// which prices slots one at a time without building an instance.
    pub fn eval(&self, types: &[ServerType], x: &[u32]) -> f64 {
        match self {
            HCost::SeparableAbs { targets, slopes } => x
                .iter()
                .zip(targets.iter().zip(slopes))
                .map(|(&xd, (&c, &s))| s * (xd as f64 - c).abs())
                .sum(),
            HCost::Aggregate {
                lambda,
                delay_weight,
                delay_eps,
                overload,
            } => {
                let energy: f64 = x
                    .iter()
                    .zip(types)
                    .map(|(&xd, ty)| xd as f64 * ty.energy)
                    .sum();
                let cap: f64 = x
                    .iter()
                    .zip(types)
                    .map(|(&xd, ty)| xd as f64 * ty.capacity)
                    .sum();
                if cap > *lambda {
                    energy + delay_weight * lambda / (cap - lambda + delay_eps)
                } else {
                    // Saturated: linear extension of the delay curve. The
                    // per-capacity slope must dominate the delay derivative
                    // at the junction (dw * lambda / eps^2), otherwise the
                    // two branches meet non-convexly.
                    let pen = overload.max(delay_weight * lambda / (delay_eps * delay_eps));
                    energy + delay_weight * lambda / delay_eps + pen * (lambda - cap)
                }
            }
        }
    }
}

/// A heterogeneous problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HInstance {
    /// Server types (dimension `D = types.len()`).
    pub types: Vec<ServerType>,
    /// One cost per slot.
    pub costs: Vec<HCost>,
}

impl HInstance {
    /// Dimension `D`.
    pub fn dims(&self) -> usize {
        self.types.len()
    }

    /// Horizon `T`.
    pub fn horizon(&self) -> usize {
        self.costs.len()
    }

    /// Number of lattice points `prod (m_d + 1)`.
    pub fn state_count(&self) -> usize {
        self.types
            .iter()
            .map(|t| t.count as usize + 1)
            .product::<usize>()
            .max(1)
    }

    /// Evaluate the slot-`t` (1-based) cost at a configuration.
    pub fn eval(&self, t: usize, x: &[u32]) -> f64 {
        assert_eq!(x.len(), self.dims());
        self.costs[t - 1].eval(&self.types, x)
    }

    /// Switching cost between consecutive configurations.
    pub fn switch_cost(&self, from: &[u32], to: &[u32]) -> f64 {
        switch_cost(&self.types, from, to)
    }

    /// Total cost of a configuration schedule (`x_0 = 0`).
    pub fn cost(&self, xs: &[Config]) -> f64 {
        assert_eq!(xs.len(), self.horizon());
        let zero = vec![0u32; self.dims()];
        let mut prev: &[u32] = &zero;
        let mut total = 0.0;
        for (t, x) in xs.iter().enumerate() {
            total += self.switch_cost(prev, x) + self.eval(t + 1, x);
            prev = x;
        }
        total
    }

    /// Enumerate every lattice configuration (row-major).
    pub fn all_configs(&self) -> Vec<Config> {
        all_configs(&self.types)
    }
}

/// Switching cost between consecutive configurations of a fleet: each type
/// charges its own `beta` per machine powered up (downs are free).
pub fn switch_cost(types: &[ServerType], from: &[u32], to: &[u32]) -> f64 {
    from.iter()
        .zip(to)
        .zip(types)
        .map(|((&a, &b), ty)| ty.beta * b.saturating_sub(a) as f64)
        .sum()
}

/// Enumerate every lattice configuration of a fleet (row-major: the last
/// type varies fastest; index 0 is the all-zero configuration).
pub fn all_configs(types: &[ServerType]) -> Vec<Config> {
    let mut out = vec![vec![]];
    for ty in types {
        let mut next = Vec::with_capacity(out.len() * (ty.count as usize + 1));
        for prefix in &out {
            for v in 0..=ty.count {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_types() -> Vec<ServerType> {
        vec![
            ServerType {
                count: 2,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            ServerType {
                count: 3,
                beta: 2.0,
                energy: 1.6,
                capacity: 2.0,
            },
        ]
    }

    #[test]
    fn state_enumeration() {
        let inst = HInstance {
            types: two_types(),
            costs: vec![],
        };
        assert_eq!(inst.state_count(), 3 * 4);
        let all = inst.all_configs();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[11], vec![2, 3]);
    }

    #[test]
    fn separable_cost_adds_up() {
        let inst = HInstance {
            types: two_types(),
            costs: vec![HCost::SeparableAbs {
                targets: vec![1.0, 2.0],
                slopes: vec![3.0, 0.5],
            }],
        };
        // |2-1|*3 + |0-2|*0.5 = 4
        assert!((inst.eval(1, &[2, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_cost_prefers_capacity() {
        let inst = HInstance {
            types: two_types(),
            costs: vec![HCost::Aggregate {
                lambda: 3.0,
                delay_weight: 2.0,
                delay_eps: 0.2,
                overload: 50.0,
            }],
        };
        // Zero capacity: overload-dominated.
        let c0 = inst.eval(1, &[0, 0]);
        // Ample capacity: energy + small delay.
        let c_full = inst.eval(1, &[2, 3]);
        assert!(c0 > c_full);
        // Convex along each axis (finite differences non-decreasing).
        for d in 0..2 {
            let mut prev_slope = f64::NEG_INFINITY;
            let maxd = inst.types[d].count;
            for v in 0..maxd {
                let mut a = vec![1, 1];
                let mut b = vec![1, 1];
                a[d] = v;
                b[d] = v + 1;
                let slope = inst.eval(1, &b) - inst.eval(1, &a);
                assert!(
                    slope >= prev_slope - 1e-9,
                    "axis {d}: slope {slope} < {prev_slope}"
                );
                prev_slope = slope;
            }
        }
    }

    #[test]
    fn switching_charges_ups_per_type() {
        let inst = HInstance {
            types: two_types(),
            costs: vec![],
        };
        // Type 0: +2 at beta 1; type 1: down (free).
        assert!((inst.switch_cost(&[0, 3], &[2, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_cost_matches_manual() {
        let inst = HInstance {
            types: two_types(),
            costs: vec![
                HCost::SeparableAbs {
                    targets: vec![1.0, 0.0],
                    slopes: vec![1.0, 1.0],
                },
                HCost::SeparableAbs {
                    targets: vec![1.0, 1.0],
                    slopes: vec![1.0, 1.0],
                },
            ],
        };
        let xs = vec![vec![1, 0], vec![1, 1]];
        // switching: up 1 of type0 (1) + up 1 of type1 (2) = 3; op: 0 + 0.
        assert!((inst.cost(&xs) - 3.0).abs() < 1e-12);
    }
}
