//! Streaming heterogeneous tenants: the lattice DP as a resumable policy.
//!
//! The homogeneous policies stream through
//! [`rsdc_online::streaming::StreamingPolicy`], whose events are 1-D
//! [`rsdc_core::Cost`] functions and whose states are scalars. The
//! heterogeneous problem has vector states over a configuration lattice,
//! so it gets its own streaming shape here, mirroring the same contract:
//!
//! * [`FleetSpec`] — the serializable tenant configuration: server types
//!   (count / power-up beta / energy / capacity per machine class) plus
//!   the aggregate-cost parameters that price a raw offered load into an
//!   [`HCost::Aggregate`] slot cost;
//! * [`HeteroStream`] — ingest one load per slot, commit one
//!   configuration per slot, and expose **bit-exact** `snapshot` /
//!   `restore`: the incremental state is the DP frontier (plus the
//!   committed configuration), so a restored stream continues exactly the
//!   schedule an uninterrupted run would produce — the property the
//!   engine's checkpoint/recovery layer builds on;
//! * [`HeteroAlgo`] — which policy drives the stream:
//!   [`Frontier`](HeteroAlgo::Frontier) (the [`FrontierDp`] lattice DP;
//!   its frontier min doubles as the exact prefix optimum) or
//!   [`Greedy`](HeteroAlgo::Greedy) (slot-wise minimizer, the thrash-prone
//!   baseline; pairs with a separate opt frontier when ratio tracking is
//!   on).
//!
//! Every commit reports its own operating and switching cost (per-type
//! betas make the scalar accounting of the engine insufficient), so the
//! engine can keep exact running totals without re-deriving fleet math.

use crate::model::{self, Config, HCost, ServerType};
use crate::online::{FrontierDp, GreedyConfig};
use serde::{Deserialize, Serialize};

/// Largest configuration lattice a streaming tenant may declare
/// (`prod (m_d + 1)` points). Memory per tenant is `O(S * D)` (the
/// frontier and the lattice — switching costs are computed on the fly,
/// never tabulated), so the cap bounds the `O(S^2 * D)` per-slot DP work
/// that would otherwise let one admit record freeze its shard.
pub const MAX_LATTICE: usize = 4096;

/// A heterogeneous tenant's static configuration: the machine classes and
/// the aggregate-cost parameters that price each offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Server types (dimension `D = types.len()`): per class, machine
    /// count, power-up cost, per-slot energy, and serving capacity.
    pub types: Vec<ServerType>,
    /// Delay weight of the aggregate cost.
    pub delay_weight: f64,
    /// Regulariser keeping the delay finite near saturation.
    pub delay_eps: f64,
    /// Overload penalty per unserved load unit.
    pub overload: f64,
}

impl FleetSpec {
    /// A fleet with the default aggregate-cost parameters
    /// (`delay_weight = 1`, `delay_eps = 0.3`, `overload = 25`).
    pub fn new(types: Vec<ServerType>) -> Self {
        FleetSpec {
            types,
            delay_weight: 1.0,
            delay_eps: 0.3,
            overload: 25.0,
        }
    }

    /// Validate the spec: at least one type, every count `>= 1`, finite
    /// non-negative betas/energies, positive capacities and `delay_eps`,
    /// and a lattice no larger than [`MAX_LATTICE`].
    pub fn validate(&self) -> Result<(), rsdc_core::Error> {
        let bad = |m: String| rsdc_core::Error::InvalidParameter(m);
        if self.types.is_empty() {
            return Err(bad("fleet needs at least one server type".into()));
        }
        for (d, ty) in self.types.iter().enumerate() {
            if ty.count == 0 {
                return Err(bad(format!("type {d}: count must be >= 1")));
            }
            if !(ty.beta.is_finite() && ty.beta >= 0.0) {
                return Err(bad(format!("type {d}: beta must be finite and >= 0")));
            }
            if !(ty.energy.is_finite() && ty.energy >= 0.0) {
                return Err(bad(format!("type {d}: energy must be finite and >= 0")));
            }
            if !(ty.capacity.is_finite() && ty.capacity > 0.0) {
                return Err(bad(format!("type {d}: capacity must be finite and > 0")));
            }
        }
        if !(self.delay_eps.is_finite() && self.delay_eps > 0.0) {
            return Err(bad("delay_eps must be finite and > 0".into()));
        }
        if !(self.delay_weight.is_finite() && self.delay_weight >= 0.0) {
            return Err(bad("delay_weight must be finite and >= 0".into()));
        }
        if !(self.overload.is_finite() && self.overload >= 0.0) {
            return Err(bad("overload must be finite and >= 0".into()));
        }
        if self.lattice_size() > MAX_LATTICE {
            return Err(bad(format!(
                "configuration lattice exceeds {MAX_LATTICE} points"
            )));
        }
        Ok(())
    }

    /// Dimension `D` (number of machine classes).
    pub fn dims(&self) -> usize {
        self.types.len()
    }

    /// Lattice size `S = prod (count_d + 1)` (saturating; compare against
    /// [`MAX_LATTICE`]).
    pub fn lattice_size(&self) -> usize {
        self.types
            .iter()
            .fold(1usize, |s, ty| s.saturating_mul(ty.count as usize + 1))
    }

    /// Total machines across all classes.
    pub fn total_machines(&self) -> u32 {
        self.types.iter().map(|t| t.count).sum()
    }

    /// Price one offered load into this fleet's slot cost.
    pub fn hcost(&self, lambda: f64) -> HCost {
        HCost::Aggregate {
            lambda,
            delay_weight: self.delay_weight,
            delay_eps: self.delay_eps,
            overload: self.overload,
        }
    }

    /// Build the batch instance equivalent to streaming `loads` — the
    /// reference object for engine-vs-batch differential tests.
    pub fn instance(&self, loads: &[f64]) -> crate::HInstance {
        crate::HInstance {
            types: self.types.clone(),
            costs: loads.iter().map(|&l| self.hcost(l)).collect(),
        }
    }

    /// Bridge into the physical layer: a [`rsdc_power::PowerConfig`]
    /// whose model is the fleet's machine-weighted mean per-machine draw
    /// (each class contributes [`ServerType::power_model`]) and whose
    /// capacity is the machine-weighted mean serving capacity — the
    /// scalar physics an [`rsdc_power::EnergyMeter`] needs when a shard
    /// hosts this fleet. The price defaults to a constant unit schedule;
    /// callers override it.
    pub fn power_config(&self) -> rsdc_power::PowerConfig {
        let machines: f64 = self.types.iter().map(|t| t.count as f64).sum();
        let machines = machines.max(1.0);
        let watts = self
            .types
            .iter()
            .map(|t| t.count as f64 * t.energy)
            .sum::<f64>()
            / machines;
        let capacity = self
            .types
            .iter()
            .map(|t| t.count as f64 * t.capacity)
            .sum::<f64>()
            / machines;
        let mut cfg = rsdc_power::PowerConfig::new(rsdc_power::PowerSpec::Constant { watts });
        // A fleet of zero-capacity classes cannot validate; the parse and
        // validate paths refuse those, so this only guards hand-built
        // specs.
        cfg.capacity = capacity.max(f64::MIN_POSITIVE);
        cfg
    }

    /// Parse the CLI short syntax: comma-separated machine classes, each
    /// `count:beta:energy:capacity` — e.g. `"4:1:1:1,2:2.5:1.4:2"`.
    pub fn parse_types(s: &str) -> Result<Vec<ServerType>, String> {
        let mut types = Vec::new();
        for (i, part) in s.split(',').enumerate() {
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() != 4 {
                return Err(format!(
                    "class {i}: expected count:beta:energy:capacity, got {part:?}"
                ));
            }
            let num = |k: usize, what: &str| -> Result<f64, String> {
                fields[k]
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| format!("class {i}: bad {what} {:?}: {e}", fields[k]))
            };
            let count = fields[0]
                .trim()
                .parse::<u32>()
                .map_err(|e| format!("class {i}: bad count {:?}: {e}", fields[0]))?;
            types.push(ServerType {
                count,
                beta: num(1, "beta")?,
                energy: num(2, "energy")?,
                capacity: num(3, "capacity")?,
            });
        }
        Ok(types)
    }
}

impl ServerType {
    /// The physical-layer power model for one machine of this class. The
    /// hetero cost model charges `energy` per active machine per slot
    /// regardless of its load, so the equivalent [`rsdc_power`] model is
    /// a constant draw.
    pub fn power_model(&self) -> rsdc_power::PowerSpec {
        rsdc_power::PowerSpec::Constant { watts: self.energy }
    }
}

/// Which online policy drives a heterogeneous stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeteroAlgo {
    /// Follow the offline DP frontier ([`FrontierDp`]).
    Frontier,
    /// Slot-wise minimizer ([`GreedyConfig`]), the baseline.
    Greedy,
}

impl HeteroAlgo {
    /// Parse `frontier` / `greedy` (the CLI and wire short names).
    pub fn parse_short(s: &str) -> Result<HeteroAlgo, String> {
        match s {
            "frontier" | "dp" => Ok(HeteroAlgo::Frontier),
            "greedy" => Ok(HeteroAlgo::Greedy),
            other => Err(format!(
                "unknown hetero algorithm {other:?} (frontier|greedy)"
            )),
        }
    }

    /// Recognize the `hetero[:frontier|:greedy]` policy syntax shared by
    /// the wire format and the CLI (case-insensitive). `None` when `s` is
    /// not hetero-prefixed; `Some(Err(..))` for a hetero prefix with an
    /// unknown algorithm; bare `hetero` defaults to
    /// [`HeteroAlgo::Frontier`].
    pub fn parse_policy_prefix(s: &str) -> Option<Result<HeteroAlgo, String>> {
        let lower = s.to_lowercase();
        if lower == "hetero" {
            return Some(Ok(HeteroAlgo::Frontier));
        }
        let rest = lower.strip_prefix("hetero:")?;
        Some(HeteroAlgo::parse_short(rest))
    }
}

/// What one ingested load committed: the configuration and its exact slot
/// accounting (operating cost, per-type switching cost, machine ups/downs).
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroCommit {
    /// The committed configuration (one entry per machine class).
    pub config: Config,
    /// Operating cost of this slot at the committed configuration.
    pub operating: f64,
    /// Switching cost entering this slot (per-type betas).
    pub switching: f64,
    /// Machines powered up entering this slot (across all classes).
    pub ups: u64,
    /// Machines powered down entering this slot (across all classes).
    pub downs: u64,
}

/// Serializable complete state of a [`HeteroStream`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroSnapshot {
    /// Fleet dimension `D` (shape check on restore).
    pub dims: usize,
    /// Lattice size `S` (shape check on restore).
    pub lattice: usize,
    /// Slots ingested.
    pub slots: u64,
    /// Committed configuration.
    pub state: Vec<u32>,
    /// Policy DP frontier (empty for greedy, and before the first slot).
    pub frontier: Vec<f64>,
    /// Separate prefix-optimum frontier (greedy with tracking only).
    pub opt_frontier: Option<Vec<f64>>,
}

/// A resumable streaming wrapper over the heterogeneous online policies:
/// one offered load in, one committed configuration (with its exact cost
/// accounting) out, and bit-exact snapshot/restore of the complete mutable
/// state — the DP frontier.
pub struct HeteroStream {
    spec: FleetSpec,
    algo: HeteroAlgo,
    dp: Option<FrontierDp>,       // the policy, for Frontier
    greedy: Option<GreedyConfig>, // the policy, for Greedy
    opt: Option<FrontierDp>,      // prefix-optimum tracker (Greedy + tracking)
    state: Config,
    slots: u64,
}

impl HeteroStream {
    /// Build a stream for `spec` driven by `algo`. With `track_opt`, the
    /// exact prefix optimum is maintained so reports can carry the
    /// competitive ratio — free for [`HeteroAlgo::Frontier`] (the policy
    /// frontier's min *is* the optimum), one extra frontier for greedy.
    pub fn new(
        spec: FleetSpec,
        algo: HeteroAlgo,
        track_opt: bool,
    ) -> Result<Self, rsdc_core::Error> {
        spec.validate()?;
        let dims = spec.dims();
        let (dp, greedy, opt) = match algo {
            HeteroAlgo::Frontier => (Some(FrontierDp::new(&spec.types)), None, None),
            HeteroAlgo::Greedy => (
                None,
                Some(GreedyConfig::new(dims)),
                track_opt.then(|| FrontierDp::new(&spec.types)),
            ),
        };
        Ok(HeteroStream {
            spec,
            algo,
            dp,
            greedy,
            opt,
            state: vec![0; dims],
            slots: 0,
        })
    }

    /// The fleet specification.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The driving algorithm.
    pub fn algo(&self) -> HeteroAlgo {
        self.algo
    }

    /// Human-readable policy name (the tenant report's `policy` field).
    pub fn name(&self) -> String {
        let algo = match self.algo {
            HeteroAlgo::Frontier => "frontier",
            HeteroAlgo::Greedy => "greedy",
        };
        let counts: Vec<String> = self
            .spec
            .types
            .iter()
            .map(|t| t.count.to_string())
            .collect();
        format!("Hetero({algo},m=[{}])", counts.join(","))
    }

    /// Slots ingested so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The last committed configuration (all-zero before the first slot).
    pub fn last_config(&self) -> &Config {
        &self.state
    }

    /// Exact prefix offline optimum, when tracked (`None` before the first
    /// slot, or for greedy streams built without tracking).
    pub fn opt_cost(&self) -> Option<f64> {
        match (&self.dp, &self.opt) {
            (Some(dp), _) => dp.opt_cost(),
            (None, Some(opt)) => opt.opt_cost(),
            (None, None) => None,
        }
    }

    /// Ingest one offered load and commit this slot's configuration with
    /// its exact accounting.
    pub fn ingest(&mut self, lambda: f64) -> HeteroCommit {
        let cost = self.spec.hcost(lambda);
        let next = match self.algo {
            HeteroAlgo::Frontier => self.dp.as_mut().expect("frontier policy").step_cost(&cost),
            HeteroAlgo::Greedy => self
                .greedy
                .as_mut()
                .expect("greedy policy")
                .step_cost(&self.spec.types, &cost),
        };
        if let Some(opt) = &mut self.opt {
            opt.step_cost(&cost);
        }
        let operating = cost.eval(&self.spec.types, &next);
        let switching = model::switch_cost(&self.spec.types, &self.state, &next);
        let ups: u64 = next
            .iter()
            .zip(&self.state)
            .map(|(&b, &a)| b.saturating_sub(a) as u64)
            .sum();
        let downs: u64 = next
            .iter()
            .zip(&self.state)
            .map(|(&b, &a)| a.saturating_sub(b) as u64)
            .sum();
        self.state = next.clone();
        self.slots += 1;
        HeteroCommit {
            config: next,
            operating,
            switching,
            ups,
            downs,
        }
    }

    /// Capture the complete mutable state.
    pub fn snapshot(&self) -> HeteroSnapshot {
        let lattice = self.spec.lattice_size();
        HeteroSnapshot {
            dims: self.spec.dims(),
            lattice,
            slots: self.slots,
            state: self.state.clone(),
            frontier: self
                .dp
                .as_ref()
                .map(|dp| dp.frontier().to_vec())
                .unwrap_or_default(),
            opt_frontier: self.opt.as_ref().map(|opt| opt.frontier().to_vec()),
        }
    }

    /// Re-install a captured state. The receiver must have been built with
    /// the same fleet spec, algorithm and tracking flag.
    pub fn restore(&mut self, s: &HeteroSnapshot) -> Result<(), rsdc_core::Error> {
        let bad = |m: &str| rsdc_core::Error::InvalidParameter(format!("hetero snapshot: {m}"));
        if s.dims != self.spec.dims() {
            return Err(bad("fleet dimension mismatch"));
        }
        if s.state.len() != self.spec.dims() {
            return Err(bad("state dimension mismatch"));
        }
        if s.state
            .iter()
            .zip(&self.spec.types)
            .any(|(&x, ty)| x > ty.count)
        {
            return Err(bad("state exceeds a type's machine count"));
        }
        let lattice = self.spec.lattice_size();
        if s.lattice != lattice {
            return Err(bad("lattice size mismatch"));
        }
        match self.algo {
            HeteroAlgo::Frontier => {
                if s.opt_frontier.is_some() {
                    return Err(bad("frontier stream cannot carry a separate opt frontier"));
                }
                self.dp.as_mut().expect("frontier policy").restore(
                    s.frontier.clone(),
                    s.state.clone(),
                    s.slots,
                )?;
            }
            HeteroAlgo::Greedy => {
                if !s.frontier.is_empty() {
                    return Err(bad("greedy stream cannot carry a policy frontier"));
                }
                match (&mut self.opt, &s.opt_frontier) {
                    (Some(opt), Some(front)) => {
                        opt.restore(front.clone(), s.state.clone(), s.slots)?;
                    }
                    (Some(_), None) => {
                        return Err(bad("snapshot lacks the opt frontier tracking requires"))
                    }
                    (None, Some(_)) => {
                        return Err(bad(
                            "snapshot carries an opt frontier the receiver does not track",
                        ))
                    }
                    (None, None) => {}
                }
                self.greedy
                    .as_mut()
                    .expect("greedy policy")
                    .set_state(s.state.clone());
            }
        }
        self.state = s.state.clone();
        self.slots = s.slots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec::new(vec![
            ServerType {
                count: 3,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            ServerType {
                count: 2,
                beta: 2.5,
                energy: 1.4,
                capacity: 2.0,
            },
        ])
    }

    fn loads(n: usize) -> Vec<f64> {
        (0..n).map(|t| 0.5 + ((t * 3 + 1) % 6) as f64).collect()
    }

    #[test]
    fn validate_rejects_degenerate_fleets() {
        assert!(FleetSpec::new(vec![]).validate().is_err());
        let mut s = spec();
        s.types[0].count = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.delay_eps = 0.0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.types[1].capacity = -1.0;
        assert!(s.validate().is_err());
        // Lattice blow-up is refused, not attempted.
        let huge = FleetSpec::new(vec![
            ServerType {
                count: 1000,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            };
            3
        ]);
        assert!(huge.validate().is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn fleet_maps_onto_the_physical_power_layer() {
        use rsdc_power::{PowerModel, PowerSpec};
        let s = spec();
        // Per class: a constant draw at the class's per-slot energy,
        // independent of utilization.
        assert_eq!(s.types[1].power_model(), PowerSpec::Constant { watts: 1.4 });
        assert_eq!(s.types[0].power_model().watts(0.0), 1.0);
        assert_eq!(s.types[0].power_model().watts(1.0), 1.0);
        // Fleet-wide: machine-weighted means over 3 + 2 machines.
        let cfg = s.power_config();
        assert!(cfg.validate().is_ok());
        assert_eq!(
            cfg.model,
            PowerSpec::Constant {
                watts: (3.0 * 1.0 + 2.0 * 1.4) / 5.0
            }
        );
        assert_eq!(cfg.capacity, (3.0 * 1.0 + 2.0 * 2.0) / 5.0);
        assert_eq!(cfg.price.price_at(17), 1.0, "unit price by default");
    }

    #[test]
    fn stream_matches_batch_frontier_dp() {
        let fs = loads(40);
        let inst = spec().instance(&fs);
        let mut batch = FrontierDp::new(&inst.types);
        let want: Vec<Config> = (1..=inst.horizon()).map(|t| batch.step(&inst, t)).collect();
        let mut stream = HeteroStream::new(spec(), HeteroAlgo::Frontier, true).unwrap();
        let got: Vec<Config> = fs.iter().map(|&l| stream.ingest(l).config).collect();
        assert_eq!(got, want);
        assert_eq!(stream.opt_cost(), batch.opt_cost());
        // The commit accounting re-assembles to the instance's total cost.
        let mut replay = HeteroStream::new(spec(), HeteroAlgo::Frontier, false).unwrap();
        let total: f64 = fs
            .iter()
            .map(|&l| {
                let c = replay.ingest(l);
                c.operating + c.switching
            })
            .sum();
        assert!((total - inst.cost(&got)).abs() < 1e-9 * (1.0 + total.abs()));
    }

    #[test]
    fn stream_matches_batch_greedy() {
        let fs = loads(25);
        let inst = spec().instance(&fs);
        let mut batch = GreedyConfig::new(inst.dims());
        let want: Vec<Config> = (1..=inst.horizon()).map(|t| batch.step(&inst, t)).collect();
        let mut stream = HeteroStream::new(spec(), HeteroAlgo::Greedy, false).unwrap();
        let got: Vec<Config> = fs.iter().map(|&l| stream.ingest(l).config).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let fs = loads(32);
        for (algo, track) in [
            (HeteroAlgo::Frontier, true),
            (HeteroAlgo::Frontier, false),
            (HeteroAlgo::Greedy, true),
            (HeteroAlgo::Greedy, false),
        ] {
            let mut full = HeteroStream::new(spec(), algo, track).unwrap();
            let want: Vec<Config> = fs.iter().map(|&l| full.ingest(l).config).collect();

            let mut first = HeteroStream::new(spec(), algo, track).unwrap();
            let mut got: Vec<Config> = fs[..13].iter().map(|&l| first.ingest(l).config).collect();
            // Through JSON text, as a checkpoint would carry it.
            let text = serde_json::to_string(&first.snapshot().to_value()).unwrap();
            let v: serde::Value = serde_json::from_str(&text).unwrap();
            let snap = HeteroSnapshot::from_value(&v).unwrap();
            let mut resumed = HeteroStream::new(spec(), algo, track).unwrap();
            resumed.restore(&snap).unwrap();
            got.extend(fs[13..].iter().map(|&l| resumed.ingest(l).config));
            assert_eq!(got, want, "{algo:?} track={track}");
            assert_eq!(
                resumed.opt_cost(),
                full.opt_cost(),
                "{algo:?} track={track}"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatches() {
        let mut a = HeteroStream::new(spec(), HeteroAlgo::Frontier, false).unwrap();
        a.ingest(2.0);
        let snap = a.snapshot();
        // Different fleet shape.
        let other = FleetSpec::new(vec![ServerType {
            count: 4,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        }]);
        let mut b = HeteroStream::new(other, HeteroAlgo::Frontier, false).unwrap();
        assert!(b.restore(&snap).is_err());
        // Greedy receiver refuses a frontier-carrying snapshot.
        let mut c = HeteroStream::new(spec(), HeteroAlgo::Greedy, false).unwrap();
        assert!(c.restore(&snap).is_err());
        // Tracking greedy refuses a snapshot without the opt frontier.
        let mut d = HeteroStream::new(spec(), HeteroAlgo::Greedy, true).unwrap();
        let mut e = HeteroStream::new(spec(), HeteroAlgo::Greedy, false).unwrap();
        e.ingest(2.0);
        assert!(d.restore(&e.snapshot()).is_err());
        // ... and the reverse: a non-tracking greedy receiver refuses a
        // tracking snapshot instead of silently dropping the opt frontier.
        d.ingest(2.0);
        assert!(e.restore(&d.snapshot()).is_err());
    }

    #[test]
    fn parse_types_short_syntax() {
        let types = FleetSpec::parse_types("4:1:1:1,2:2.5:1.4:2").unwrap();
        assert_eq!(types.len(), 2);
        assert_eq!(types[0].count, 4);
        assert_eq!(types[1].beta, 2.5);
        assert_eq!(types[1].capacity, 2.0);
        assert!(FleetSpec::parse_types("4:1:1").is_err());
        assert!(FleetSpec::parse_types("x:1:1:1").is_err());
        assert_eq!(
            HeteroAlgo::parse_short("frontier").unwrap(),
            HeteroAlgo::Frontier
        );
        assert_eq!(
            HeteroAlgo::parse_short("greedy").unwrap(),
            HeteroAlgo::Greedy
        );
        assert!(HeteroAlgo::parse_short("zap").is_err());
    }
}
