//! Online heuristics for the heterogeneous problem.
//!
//! No algorithm here carries the paper's guarantees — the heterogeneous
//! lower bounds are strictly harder (the paper cites convex function
//! chasing, where the best known ratios grow with dimension). Provided:
//!
//! * [`CoordinateLcp`] — run one discrete LCP per type on the *marginal*
//!   cost function (vary type `d`, freeze the other coordinates at their
//!   current values). Inherits LCP's laziness; no global guarantee.
//! * [`GreedyConfig`] — jump to the minimizing configuration each slot
//!   (coordinate descent); the thrash-prone baseline.

use crate::model::{Config, HInstance};
use rsdc_core::cost::Cost;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::OnlineAlgorithm;

/// Per-type LCP on marginal costs.
#[derive(Debug)]
pub struct CoordinateLcp {
    trackers: Vec<Lcp>,
    state: Config,
}

impl CoordinateLcp {
    /// Build from the instance's type parameters.
    pub fn new(inst: &HInstance) -> Self {
        let trackers = inst
            .types
            .iter()
            .map(|ty| Lcp::new(ty.count, ty.beta))
            .collect();
        Self {
            trackers,
            state: vec![0; inst.dims()],
        }
    }

    /// Consume slot `t`'s cost (1-based, must match the instance) and
    /// commit a configuration.
    pub fn step(&mut self, inst: &HInstance, t: usize) -> Config {
        // One pass of coordinate updates, each against the marginal cost
        // with the *latest* values of the other coordinates.
        for d in 0..inst.dims() {
            let mut probe = self.state.clone();
            let vals: Vec<f64> = (0..=inst.types[d].count)
                .map(|v| {
                    probe[d] = v;
                    inst.eval(t, &probe)
                })
                .collect();
            let marginal = convex_upper_envelope(vals);
            let x = self.trackers[d].step(&marginal);
            self.state[d] = x;
        }
        self.state.clone()
    }
}

/// Jump to a minimizing configuration of each slot's cost (exhaustive over
/// the lattice — coordinate descent can stall at non-global lattice points
/// even for jointly convex costs, so we pay the `O(S)` scan; the lattices
/// this crate targets are small).
#[derive(Debug)]
pub struct GreedyConfig {
    state: Config,
    lattice: Option<Vec<Config>>,
}

impl GreedyConfig {
    /// Start from the all-zero configuration.
    pub fn new(dims: usize) -> Self {
        Self {
            state: vec![0; dims],
            lattice: None,
        }
    }

    /// Commit a configuration for slot `t`.
    pub fn step(&mut self, inst: &HInstance, t: usize) -> Config {
        let lattice = self.lattice.get_or_insert_with(|| inst.all_configs());
        let mut best_c = f64::INFINITY;
        let mut best = self.state.clone();
        for cfg in lattice.iter() {
            let c = inst.eval(t, cfg);
            if c < best_c {
                best_c = c;
                best = cfg.clone();
            }
        }
        self.state = best;
        self.state.clone()
    }
}

/// Convexify a sampled marginal: marginal costs of a jointly-convex
/// function along one axis are convex already; numerical noise or the
/// saturated overload branch can leave tiny violations, so take the convex
/// lower envelope defensively (monotone-slope repair).
fn convex_upper_envelope(vals: Vec<f64>) -> Cost {
    let mut v = vals;
    // Repair: enforce non-decreasing slopes by a single pass of slope
    // averaging (Pool Adjacent Violators on the derivative).
    let n = v.len();
    if n >= 3 {
        let slopes: Vec<f64> = v.windows(2).map(|w| w[1] - w[0]).collect();
        // Pool Adjacent Violators on the slope sequence: blocks store
        // (slope sum, count); merge while the previous block's average
        // exceeds the current block's average.
        let mut blocks: Vec<(f64, usize)> = Vec::new();
        for s in slopes {
            let mut cur = (s, 1usize);
            while let Some(&(psum, pcnt)) = blocks.last() {
                let prev_avg = psum / pcnt as f64;
                let cur_avg = cur.0 / cur.1 as f64;
                if prev_avg > cur_avg + 1e-15 {
                    blocks.pop();
                    cur = (psum + cur.0, pcnt + cur.1);
                } else {
                    break;
                }
            }
            blocks.push(cur);
        }
        let mut acc = v[0];
        let mut i = 0usize;
        for (sum, cnt) in blocks {
            let avg = sum / cnt as f64;
            for _ in 0..cnt {
                acc += avg;
                i += 1;
                v[i] = acc;
            }
        }
    }
    Cost::table(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HCost, ServerType};
    use crate::offline;

    fn instance(loads: &[f64]) -> HInstance {
        HInstance {
            types: vec![
                ServerType {
                    count: 3,
                    beta: 1.0,
                    energy: 1.0,
                    capacity: 1.0,
                },
                ServerType {
                    count: 3,
                    beta: 2.5,
                    energy: 1.4,
                    capacity: 2.0,
                },
            ],
            costs: loads
                .iter()
                .map(|&lambda| HCost::Aggregate {
                    lambda,
                    delay_weight: 1.0,
                    delay_eps: 0.3,
                    overload: 25.0,
                })
                .collect(),
        }
    }

    fn run_coordinate_lcp(inst: &HInstance) -> Vec<Config> {
        let mut a = CoordinateLcp::new(inst);
        (1..=inst.horizon()).map(|t| a.step(inst, t)).collect()
    }

    fn run_greedy(inst: &HInstance) -> Vec<Config> {
        let mut a = GreedyConfig::new(inst.dims());
        (1..=inst.horizon()).map(|t| a.step(inst, t)).collect()
    }

    #[test]
    fn coordinate_lcp_is_feasible_and_reasonable() {
        let loads: Vec<f64> = (0..40)
            .map(|t| 2.5 + 2.0 * ((t as f64) * 0.4).sin())
            .collect();
        let inst = instance(&loads);
        let xs = run_coordinate_lcp(&inst);
        for (x, ty) in xs.iter().flat_map(|c| c.iter().zip(&inst.types)) {
            assert!(*x <= ty.count);
        }
        let opt = offline::solve(&inst);
        let ratio = inst.cost(&xs) / opt.cost;
        assert!(
            (1.0..=4.0).contains(&ratio),
            "coordinate LCP ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn greedy_finds_slotwise_minima() {
        let inst = instance(&[3.0]);
        let xs = run_greedy(&inst);
        // Exhaustive check: no configuration has lower slot cost.
        let c = inst.eval(1, &xs[0]);
        for cfg in inst.all_configs() {
            assert!(inst.eval(1, &cfg) >= c - 1e-9, "{cfg:?}");
        }
    }

    #[test]
    fn lcp_no_worse_than_greedy_on_oscillation() {
        // Alternating load: greedy re-buys capacity every other slot.
        let loads: Vec<f64> = (0..60)
            .map(|t| if t % 2 == 0 { 5.0 } else { 0.5 })
            .collect();
        let inst = instance(&loads);
        let c_lcp = inst.cost(&run_coordinate_lcp(&inst));
        let c_greedy = inst.cost(&run_greedy(&inst));
        assert!(
            c_lcp <= c_greedy * 1.05,
            "coordinate LCP {c_lcp} vs greedy {c_greedy}"
        );
    }

    #[test]
    fn envelope_repair_is_convex_and_below_input() {
        let raw = vec![5.0, 1.0, 2.0, 1.5, 4.0];
        let c = convex_upper_envelope(raw.clone());
        let vals: Vec<f64> = (0..5).map(|x| c.eval(x)).collect();
        for w in vals.windows(3) {
            assert!(w[1] - w[0] <= w[2] - w[1] + 1e-9, "{vals:?}");
        }
        assert_eq!(vals[0], raw[0], "anchored at the left end");
    }
}
