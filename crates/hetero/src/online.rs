//! Online heuristics for the heterogeneous problem.
//!
//! No algorithm here carries the paper's guarantees — the heterogeneous
//! lower bounds are strictly harder (the paper cites convex function
//! chasing, where the best known ratios grow with dimension). Provided:
//!
//! * [`FrontierDp`] — maintain the *offline DP frontier* incrementally
//!   (the exact prefix optimum to every lattice point, the recurrence of
//!   [`crate::offline::solve`] run one slot at a time) and commit the
//!   frontier's argmin each slot. The frontier vector is the algorithm's
//!   complete state, which is what makes it streamable: snapshotting the
//!   frontier and resuming is bit-identical to never stopping.
//! * [`CoordinateLcp`] — run one discrete LCP per type on the *marginal*
//!   cost function (vary type `d`, freeze the other coordinates at their
//!   current values). Inherits LCP's laziness; no global guarantee.
//! * [`GreedyConfig`] — jump to the minimizing configuration each slot
//!   (coordinate descent); the thrash-prone baseline.

use crate::model::{self, Config, HCost, HInstance, ServerType};
use rsdc_core::cost::Cost;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::OnlineAlgorithm;

/// Per-type LCP on marginal costs.
#[derive(Debug)]
pub struct CoordinateLcp {
    trackers: Vec<Lcp>,
    state: Config,
}

impl CoordinateLcp {
    /// Build from the instance's type parameters.
    pub fn new(inst: &HInstance) -> Self {
        let trackers = inst
            .types
            .iter()
            .map(|ty| Lcp::new(ty.count, ty.beta))
            .collect();
        Self {
            trackers,
            state: vec![0; inst.dims()],
        }
    }

    /// Consume slot `t`'s cost (1-based, must match the instance) and
    /// commit a configuration.
    pub fn step(&mut self, inst: &HInstance, t: usize) -> Config {
        // One pass of coordinate updates, each against the marginal cost
        // with the *latest* values of the other coordinates.
        for d in 0..inst.dims() {
            let mut probe = self.state.clone();
            let vals: Vec<f64> = (0..=inst.types[d].count)
                .map(|v| {
                    probe[d] = v;
                    inst.eval(t, &probe)
                })
                .collect();
            let marginal = convex_upper_envelope(vals);
            let x = self.trackers[d].step(&marginal);
            self.state[d] = x;
        }
        self.state.clone()
    }
}

/// Jump to a minimizing configuration of each slot's cost (exhaustive over
/// the lattice — coordinate descent can stall at non-global lattice points
/// even for jointly convex costs, so we pay the `O(S)` scan; the lattices
/// this crate targets are small).
#[derive(Debug)]
pub struct GreedyConfig {
    state: Config,
    lattice: Option<Vec<Config>>,
}

impl GreedyConfig {
    /// Start from the all-zero configuration.
    pub fn new(dims: usize) -> Self {
        Self {
            state: vec![0; dims],
            lattice: None,
        }
    }

    /// Commit a configuration for slot `t`.
    pub fn step(&mut self, inst: &HInstance, t: usize) -> Config {
        self.step_cost(&inst.types, &inst.costs[t - 1])
    }

    /// Commit a configuration for one streamed cost — the instance-free
    /// core of [`GreedyConfig::step`], used by the streaming wrapper.
    pub fn step_cost(&mut self, types: &[ServerType], cost: &HCost) -> Config {
        let lattice = self
            .lattice
            .get_or_insert_with(|| model::all_configs(types));
        let mut best_c = f64::INFINITY;
        let mut best = self.state.clone();
        for cfg in lattice.iter() {
            let c = cost.eval(types, cfg);
            if c < best_c {
                best_c = c;
                best = cfg.clone();
            }
        }
        self.state = best;
        self.state.clone()
    }

    /// The last committed configuration.
    pub fn state(&self) -> &Config {
        &self.state
    }

    /// Re-install a committed configuration (snapshot restore).
    pub fn set_state(&mut self, state: Config) {
        self.state = state;
    }
}

/// Follow the offline DP frontier: keep, for every lattice point `j`, the
/// exact optimal cost `dist[j]` of serving the prefix seen so far and
/// ending in `j` (the recurrence of [`crate::offline::solve`], advanced
/// one slot at a time), and commit the frontier's argmin each slot.
///
/// Two properties make this the natural streaming hetero policy:
///
/// * the frontier **is** the complete algorithm state — `O(S)` floats for
///   `S` lattice points, independent of the stream length — so snapshot /
///   restore is exact by construction;
/// * `min_j dist[j]` is the exact prefix offline optimum, so competitive-
///   ratio tracking comes for free (no second tracker needed).
///
/// `O(S^2)` work per slot, like one column of the offline DP.
#[derive(Debug, Clone)]
pub struct FrontierDp {
    types: Vec<ServerType>,
    lattice: Vec<Config>,
    dist: Vec<f64>, // empty until the first slot is ingested
    state: Config,
    slots: u64,
}

impl FrontierDp {
    /// Build for a fleet. The lattice (`prod (m_d + 1)` points) is
    /// enumerated here; switching costs are computed on the fly in the DP
    /// inner loop (`O(D)` each), keeping memory at `O(S * D)` — a dense
    /// `S x S` table would cost `S^2` floats per tenant, which a
    /// multi-tenant engine cannot afford near the lattice cap.
    pub fn new(types: &[ServerType]) -> Self {
        FrontierDp {
            types: types.to_vec(),
            state: vec![0; types.len()],
            lattice: model::all_configs(types),
            dist: Vec::new(),
            slots: 0,
        }
    }

    /// Commit a configuration for slot `t` of an instance (batch runner).
    pub fn step(&mut self, inst: &HInstance, t: usize) -> Config {
        self.step_cost(&inst.costs[t - 1])
    }

    /// Advance the frontier by one streamed cost and commit its argmin
    /// (ties break toward the lowest lattice index, deterministically).
    pub fn step_cost(&mut self, cost: &HCost) -> Config {
        let s = self.lattice.len();
        let mut next = vec![0.0f64; s];
        if self.dist.is_empty() {
            // First slot from the all-zero configuration (lattice index 0),
            // exactly the offline DP's first column.
            for (j, st) in self.lattice.iter().enumerate() {
                next[j] = model::switch_cost(&self.types, &self.lattice[0], st)
                    + cost.eval(&self.types, st);
            }
        } else {
            for (j, st) in self.lattice.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (i, from) in self.lattice.iter().enumerate() {
                    let c = self.dist[i] + model::switch_cost(&self.types, from, st);
                    if c < best {
                        best = c;
                    }
                }
                next[j] = best + cost.eval(&self.types, st);
            }
        }
        self.dist = next;
        self.slots += 1;
        let mut arg = 0usize;
        for j in 1..s {
            if self.dist[j] < self.dist[arg] {
                arg = j;
            }
        }
        self.state = self.lattice[arg].clone();
        self.state.clone()
    }

    /// The fleet's server types.
    pub fn types(&self) -> &[ServerType] {
        &self.types
    }

    /// Lattice size `S`.
    pub fn lattice_size(&self) -> usize {
        self.lattice.len()
    }

    /// Slots ingested so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The frontier vector (empty before the first slot).
    pub fn frontier(&self) -> &[f64] {
        &self.dist
    }

    /// The last committed configuration (all-zero before the first slot).
    pub fn state(&self) -> &Config {
        &self.state
    }

    /// Exact offline optimum of the ingested prefix — `min_j dist[j]`
    /// (`None` before the first slot).
    pub fn opt_cost(&self) -> Option<f64> {
        self.dist
            .iter()
            .copied()
            .reduce(|a, b| if b < a { b } else { a })
    }

    /// Re-install a previously captured frontier + committed state.
    pub fn restore(
        &mut self,
        dist: Vec<f64>,
        state: Config,
        slots: u64,
    ) -> Result<(), rsdc_core::Error> {
        let bad = |m: &str| rsdc_core::Error::InvalidParameter(format!("FrontierDp snapshot: {m}"));
        if !(dist.is_empty() || dist.len() == self.lattice.len()) {
            return Err(bad("frontier length does not match the lattice"));
        }
        if state.len() != self.types.len() {
            return Err(bad("state dimension does not match the fleet"));
        }
        if state.iter().zip(&self.types).any(|(&x, ty)| x > ty.count) {
            return Err(bad("state exceeds a type's machine count"));
        }
        if dist.is_empty() != (slots == 0) {
            return Err(bad("slot count inconsistent with frontier"));
        }
        self.dist = dist;
        self.state = state;
        self.slots = slots;
        Ok(())
    }
}

/// Convexify a sampled marginal: marginal costs of a jointly-convex
/// function along one axis are convex already; numerical noise or the
/// saturated overload branch can leave tiny violations, so take the convex
/// lower envelope defensively (monotone-slope repair).
fn convex_upper_envelope(vals: Vec<f64>) -> Cost {
    let mut v = vals;
    // Repair: enforce non-decreasing slopes by a single pass of slope
    // averaging (Pool Adjacent Violators on the derivative).
    let n = v.len();
    if n >= 3 {
        let slopes: Vec<f64> = v.windows(2).map(|w| w[1] - w[0]).collect();
        // Pool Adjacent Violators on the slope sequence: blocks store
        // (slope sum, count); merge while the previous block's average
        // exceeds the current block's average.
        let mut blocks: Vec<(f64, usize)> = Vec::new();
        for s in slopes {
            let mut cur = (s, 1usize);
            while let Some(&(psum, pcnt)) = blocks.last() {
                let prev_avg = psum / pcnt as f64;
                let cur_avg = cur.0 / cur.1 as f64;
                if prev_avg > cur_avg + 1e-15 {
                    blocks.pop();
                    cur = (psum + cur.0, pcnt + cur.1);
                } else {
                    break;
                }
            }
            blocks.push(cur);
        }
        let mut acc = v[0];
        let mut i = 0usize;
        for (sum, cnt) in blocks {
            let avg = sum / cnt as f64;
            for _ in 0..cnt {
                acc += avg;
                i += 1;
                v[i] = acc;
            }
        }
    }
    Cost::table(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HCost, ServerType};
    use crate::offline;

    fn instance(loads: &[f64]) -> HInstance {
        HInstance {
            types: vec![
                ServerType {
                    count: 3,
                    beta: 1.0,
                    energy: 1.0,
                    capacity: 1.0,
                },
                ServerType {
                    count: 3,
                    beta: 2.5,
                    energy: 1.4,
                    capacity: 2.0,
                },
            ],
            costs: loads
                .iter()
                .map(|&lambda| HCost::Aggregate {
                    lambda,
                    delay_weight: 1.0,
                    delay_eps: 0.3,
                    overload: 25.0,
                })
                .collect(),
        }
    }

    fn run_coordinate_lcp(inst: &HInstance) -> Vec<Config> {
        let mut a = CoordinateLcp::new(inst);
        (1..=inst.horizon()).map(|t| a.step(inst, t)).collect()
    }

    fn run_greedy(inst: &HInstance) -> Vec<Config> {
        let mut a = GreedyConfig::new(inst.dims());
        (1..=inst.horizon()).map(|t| a.step(inst, t)).collect()
    }

    #[test]
    fn coordinate_lcp_is_feasible_and_reasonable() {
        let loads: Vec<f64> = (0..40)
            .map(|t| 2.5 + 2.0 * ((t as f64) * 0.4).sin())
            .collect();
        let inst = instance(&loads);
        let xs = run_coordinate_lcp(&inst);
        for (x, ty) in xs.iter().flat_map(|c| c.iter().zip(&inst.types)) {
            assert!(*x <= ty.count);
        }
        let opt = offline::solve(&inst);
        let ratio = inst.cost(&xs) / opt.cost;
        assert!(
            (1.0..=4.0).contains(&ratio),
            "coordinate LCP ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn greedy_finds_slotwise_minima() {
        let inst = instance(&[3.0]);
        let xs = run_greedy(&inst);
        // Exhaustive check: no configuration has lower slot cost.
        let c = inst.eval(1, &xs[0]);
        for cfg in inst.all_configs() {
            assert!(inst.eval(1, &cfg) >= c - 1e-9, "{cfg:?}");
        }
    }

    #[test]
    fn lcp_no_worse_than_greedy_on_oscillation() {
        // Alternating load: greedy re-buys capacity every other slot.
        let loads: Vec<f64> = (0..60)
            .map(|t| if t % 2 == 0 { 5.0 } else { 0.5 })
            .collect();
        let inst = instance(&loads);
        let c_lcp = inst.cost(&run_coordinate_lcp(&inst));
        let c_greedy = inst.cost(&run_greedy(&inst));
        assert!(
            c_lcp <= c_greedy * 1.05,
            "coordinate LCP {c_lcp} vs greedy {c_greedy}"
        );
    }

    #[test]
    fn frontier_dp_tracks_the_exact_prefix_optimum() {
        // The frontier after t slots is the offline DP's column t, so its
        // min must equal the offline optimum of the prefix — bitwise, the
        // arithmetic is the same.
        let loads: Vec<f64> = (0..12).map(|t| 1.0 + (t % 5) as f64).collect();
        let inst = instance(&loads);
        let mut a = FrontierDp::new(&inst.types);
        for t in 1..=inst.horizon() {
            a.step(&inst, t);
            let prefix = HInstance {
                types: inst.types.clone(),
                costs: inst.costs[..t].to_vec(),
            };
            let opt = offline::solve(&prefix).cost;
            assert_eq!(a.opt_cost().unwrap(), opt, "prefix length {t}");
        }
    }

    #[test]
    fn frontier_dp_is_feasible_and_reasonable() {
        let loads: Vec<f64> = (0..40)
            .map(|t| 2.5 + 2.0 * ((t as f64) * 0.4).sin())
            .collect();
        let inst = instance(&loads);
        let mut a = FrontierDp::new(&inst.types);
        let xs: Vec<Config> = (1..=inst.horizon()).map(|t| a.step(&inst, t)).collect();
        for (x, ty) in xs.iter().flat_map(|c| c.iter().zip(&inst.types)) {
            assert!(*x <= ty.count);
        }
        let opt = offline::solve(&inst);
        let ratio = inst.cost(&xs) / opt.cost;
        assert!(
            (1.0..=4.0).contains(&ratio),
            "frontier DP ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn frontier_dp_restore_resumes_bit_identically() {
        let loads: Vec<f64> = (0..30).map(|t| 0.5 + (t % 7) as f64).collect();
        let inst = instance(&loads);
        let mut full = FrontierDp::new(&inst.types);
        let want: Vec<Config> = (1..=inst.horizon()).map(|t| full.step(&inst, t)).collect();

        let mut first = FrontierDp::new(&inst.types);
        let mut got: Vec<Config> = (1..=11).map(|t| first.step(&inst, t)).collect();
        let (dist, state, slots) = (
            first.frontier().to_vec(),
            first.state().clone(),
            first.slots(),
        );
        let mut resumed = FrontierDp::new(&inst.types);
        resumed.restore(dist, state, slots).unwrap();
        got.extend((12..=inst.horizon()).map(|t| resumed.step(&inst, t)));
        assert_eq!(got, want);
        assert_eq!(resumed.opt_cost(), full.opt_cost());
    }

    #[test]
    fn frontier_dp_restore_rejects_mismatched_shapes() {
        let inst = instance(&[1.0]);
        let mut a = FrontierDp::new(&inst.types);
        a.step(&inst, 1);
        let mut b = FrontierDp::new(&inst.types);
        assert!(b
            .restore(vec![0.0; 3], a.state().clone(), a.slots())
            .is_err());
        assert!(b.restore(a.frontier().to_vec(), vec![9, 9], 1).is_err());
        assert!(b.restore(a.frontier().to_vec(), vec![0, 0, 0], 1).is_err());
        assert!(b.restore(Vec::new(), vec![0, 0], 1).is_err());
        assert!(b
            .restore(a.frontier().to_vec(), a.state().clone(), a.slots())
            .is_ok());
    }

    #[test]
    fn envelope_repair_is_convex_and_below_input() {
        let raw = vec![5.0, 1.0, 2.0, 1.5, 4.0];
        let c = convex_upper_envelope(raw.clone());
        let vals: Vec<f64> = (0..5).map(|x| c.eval(x)).collect();
        for w in vals.windows(3) {
            assert!(w[1] - w[0] <= w[2] - w[1] + 1e-9, "{vals:?}");
        }
        assert_eq!(vals[0], raw[0], "anchored at the left end");
    }
}
