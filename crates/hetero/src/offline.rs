//! Exact offline optimum over the configuration lattice.
//!
//! A direct DP over all `prod (m_d + 1)` configurations per slot with
//! pairwise transitions — exponential in the number of types, intended for
//! the small `D` regimes where the heterogeneous extension is typically
//! studied (2–3 types). The homogeneous solvers remain the scalable path;
//! this is the ground truth they are compared against.

use crate::model::{Config, HInstance};

/// An optimal configuration schedule with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct HSolution {
    /// One configuration per slot.
    pub schedule: Vec<Config>,
    /// Total cost.
    pub cost: f64,
}

/// Exact DP. `O(T * S^2)` for `S = prod (m_d + 1)` lattice points.
pub fn solve(inst: &HInstance) -> HSolution {
    let t_len = inst.horizon();
    if t_len == 0 {
        return HSolution {
            schedule: vec![],
            cost: 0.0,
        };
    }
    let states = inst.all_configs();
    let s = states.len();
    // Precompute pairwise switching costs (S^2 — fine for small lattices).
    let mut switch = vec![0.0f64; s * s];
    for (i, a) in states.iter().enumerate() {
        for (j, b) in states.iter().enumerate() {
            switch[i * s + j] = inst.switch_cost(a, b);
        }
    }

    let zero_idx = 0usize; // all_configs starts at the all-zero config
    debug_assert!(states[zero_idx].iter().all(|&v| v == 0));

    let mut dist = vec![f64::INFINITY; s];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(t_len);
    // First slot from the zero configuration.
    for (j, st) in states.iter().enumerate() {
        dist[j] = switch[zero_idx * s + j] + inst.eval(1, st);
    }
    parents.push(vec![zero_idx as u32; s]);

    for t in 2..=t_len {
        let mut next = vec![f64::INFINITY; s];
        let mut parent = vec![0u32; s];
        for (j, st) in states.iter().enumerate() {
            let f = inst.eval(t, st);
            let mut best = f64::INFINITY;
            let mut best_i = 0u32;
            for i in 0..s {
                let c = dist[i] + switch[i * s + j];
                if c < best {
                    best = c;
                    best_i = i as u32;
                }
            }
            next[j] = best + f;
            parent[j] = best_i;
        }
        dist = next;
        parents.push(parent);
    }

    let (mut j, cost) = dist
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(j, &c)| (j, c))
        .expect("non-empty lattice");

    let mut schedule = vec![Vec::new(); t_len];
    for t in (0..t_len).rev() {
        schedule[t] = states[j].clone();
        j = parents[t][j] as usize;
    }
    HSolution { schedule, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HCost, ServerType};

    fn types() -> Vec<ServerType> {
        vec![
            ServerType {
                count: 2,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            ServerType {
                count: 2,
                beta: 3.0,
                energy: 1.5,
                capacity: 2.5,
            },
        ]
    }

    #[test]
    fn separable_decomposes_into_1d_problems() {
        // For separable costs the heterogeneous optimum is the product of
        // the per-type homogeneous optima — cross-check against the 1-D DP.
        use rsdc_core::prelude::*;
        let targets = [vec![2.0, 0.0], vec![1.0, 2.0], vec![0.0, 1.0]];
        let inst = HInstance {
            types: types(),
            costs: targets
                .iter()
                .map(|t| HCost::SeparableAbs {
                    targets: t.clone(),
                    slopes: vec![2.0, 1.5],
                })
                .collect(),
        };
        let h = solve(&inst);

        let mut sum_1d = 0.0;
        for d in 0..2 {
            let ty = inst.types[d];
            let costs: Vec<Cost> = targets
                .iter()
                .map(|t| Cost::abs([2.0, 1.5][d], t[d]))
                .collect();
            let one = Instance::new(ty.count, ty.beta, costs).unwrap();
            sum_1d += rsdc_offline::dp::solve_cost_only(&one);
        }
        assert!(
            (h.cost - sum_1d).abs() < 1e-9 * (1.0 + sum_1d),
            "hetero {} vs decomposed {}",
            h.cost,
            sum_1d
        );
    }

    #[test]
    fn prefers_efficient_type_under_aggregate_cost() {
        // Type 1 has 2.5x the capacity for 1.5x the energy: at high load
        // the optimum should use it.
        let inst = HInstance {
            types: types(),
            costs: vec![
                HCost::Aggregate {
                    lambda: 4.0,
                    delay_weight: 1.0,
                    delay_eps: 0.3,
                    overload: 30.0,
                };
                6
            ],
        };
        let h = solve(&inst);
        let used_type1: u32 = h.schedule.iter().map(|c| c[1]).max().unwrap();
        assert!(used_type1 >= 2, "should lean on the efficient type: {h:?}");
        // Reported cost must match re-evaluation.
        assert!((inst.cost(&h.schedule) - h.cost).abs() < 1e-9);
    }

    #[test]
    fn beats_every_constant_configuration() {
        let inst = HInstance {
            types: types(),
            costs: (0..5)
                .map(|t| HCost::Aggregate {
                    lambda: 1.0 + t as f64,
                    delay_weight: 1.0,
                    delay_eps: 0.3,
                    overload: 30.0,
                })
                .collect(),
        };
        let h = solve(&inst);
        for cfg in inst.all_configs() {
            let xs = vec![cfg.clone(); 5];
            assert!(inst.cost(&xs) >= h.cost - 1e-9);
        }
    }

    #[test]
    fn empty_horizon() {
        let inst = HInstance {
            types: types(),
            costs: vec![],
        };
        assert_eq!(solve(&inst).cost, 0.0);
    }
}
