//! The paper's polynomial-time offline algorithm (Section 2.2).
//!
//! The pseudo-polynomial DP touches all `m + 1` states per column. The
//! binary-search algorithm instead performs `log m - 1` refinement
//! iterations. Iteration `k` (counting down from `K = log m - 2`) only uses
//! states that are multiples of `2^k`:
//!
//! * the first iteration uses the five rows `{0, m/4, m/2, 3m/4, m}`;
//! * given the optimal schedule `\hat X^k` of iteration `k`, iteration
//!   `k - 1` uses, per column, `{\hat x^k_t + xi * 2^{k-1} | xi in -2..=2}`
//!   clipped to `[0, m]` — five states again.
//!
//! Lemma 5 guarantees an optimal schedule of `P_{k-1}` exists within
//! `2^k` of *any* optimal schedule of `P_k`, so each pass stays exact and
//! the final pass (`k = 0`) is optimal for the original instance
//! (Theorem 1). Total running time `O(T log m)`.

use crate::dp::Solution;
use crate::restricted_dp::solve_restricted;
use rsdc_core::prelude::*;

/// Default padding epsilon for non-power-of-two `m` (see
/// [`Instance::pad_to_pow2`]); any positive value is correct.
pub const DEFAULT_PAD_EPS: f64 = 1e-6;

/// Solve the instance optimally in `O(T log m)` time.
pub fn solve(inst: &Instance) -> Solution {
    solve_with_eps(inst, DEFAULT_PAD_EPS)
}

/// [`solve`] with an explicit padding epsilon.
pub fn solve_with_eps(inst: &Instance, pad_eps: f64) -> Solution {
    solve_with_radius(inst, pad_eps, 2)
}

/// The refinement pass with a configurable neighbourhood radius: iteration
/// `k - 1` considers `{x^k_t + xi * 2^{k-1} | xi in -radius..=radius}`.
///
/// The paper's algorithm (and Lemma 5's guarantee `|x^k_t - x^{k-1}_t| <=
/// 2^k`) corresponds to `radius = 2`. Smaller radii are *heuristics*: they
/// run faster but may return suboptimal schedules — exactly the ablation
/// experiment E13 quantifies. Larger radii waste work.
pub fn solve_with_radius(inst: &Instance, pad_eps: f64, radius: u32) -> Solution {
    assert!(radius >= 1, "radius must be at least 1");
    let t_len = inst.horizon();
    if t_len == 0 {
        return Solution {
            schedule: Schedule::zeros(0),
            cost: 0.0,
        };
    }

    let padded = inst.pad_to_pow2(pad_eps);
    let m = padded.m();

    // For tiny m the first "iteration" already contains every state.
    if m <= 4 {
        let allowed: Vec<Vec<u32>> = (0..t_len).map(|_| (0..=m).collect()).collect();
        let sol = solve_restricted(&padded, &allowed);
        return finish(inst, sol);
    }

    let log_m = m.trailing_zeros(); // m = 2^log_m, log_m >= 3 here
    let big_k = log_m - 2;

    // Iteration K: multiples of 2^K, i.e. {0, m/4, m/2, 3m/4, m}.
    let quarter = m >> 2;
    let first: Vec<u32> = (0..=4).map(|xi| xi * quarter).collect();
    let allowed: Vec<Vec<u32>> = (0..t_len).map(|_| first.clone()).collect();
    let mut sol = solve_restricted(&padded, &allowed);

    // Iterations K-1 down to 0: insert the intermediate multiples of
    // 2^{k} around the previous schedule.
    for k in (0..big_k).rev() {
        let step = 1u32 << k;
        let allowed: Vec<Vec<u32>> = sol
            .schedule
            .0
            .iter()
            .map(|&x| {
                let r = radius as i64;
                let mut states = Vec::with_capacity(2 * radius as usize + 1);
                for xi in -r..=r {
                    let s = x as i64 + xi * step as i64;
                    if (0..=m as i64).contains(&s) {
                        states.push(s as u32);
                    }
                }
                states
            })
            .collect();
        sol = solve_restricted(&padded, &allowed);
    }

    finish(inst, sol)
}

/// Clamp a padded-instance solution back to the original instance and
/// re-evaluate its cost there. For the exact algorithm (radius >= 2) states
/// above the original `m` are never optimal because the padding extension
/// increases strictly, so the clamp is a no-op; heuristic radii may stray
/// and are clamped (which never increases the cost of our extension).
fn finish(inst: &Instance, sol: Solution) -> Solution {
    let schedule = Schedule(sol.schedule.0.iter().map(|&x| x.min(inst.m())).collect());
    let cost = rsdc_core::schedule::cost(inst, &schedule);
    Solution { schedule, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use rsdc_core::cost::Cost;

    fn assert_optimal(inst: &Instance) {
        let fast = solve(inst);
        let exact = dp::solve(inst);
        assert!(
            (fast.cost - exact.cost).abs() < 1e-9 * (1.0 + exact.cost.abs()),
            "binsearch {} vs dp {}",
            fast.cost,
            exact.cost
        );
        assert!(fast.schedule.is_feasible(inst));
        assert!(
            (rsdc_core::schedule::cost(inst, &fast.schedule) - fast.cost).abs() < 1e-9,
            "reported cost must match schedule cost"
        );
    }

    #[test]
    fn power_of_two_m() {
        let costs: Vec<Cost> = (0..12)
            .map(|t| Cost::quadratic(0.5, (t * 3 % 16) as f64, 0.0))
            .collect();
        let inst = Instance::new(16, 2.0, costs).unwrap();
        assert_optimal(&inst);
    }

    #[test]
    fn non_power_of_two_m() {
        let costs: Vec<Cost> = (0..10)
            .map(|t| Cost::abs(1.5, (t * 5 % 13) as f64))
            .collect();
        let inst = Instance::new(13, 1.0, costs).unwrap();
        assert_optimal(&inst);
    }

    #[test]
    fn tiny_m_values() {
        for m in 1..=6u32 {
            let costs: Vec<Cost> = (0..8)
                .map(|t| Cost::quadratic(1.0, (t % (m + 1)) as f64, 0.0))
                .collect();
            let inst = Instance::new(m, 0.7, costs).unwrap();
            assert_optimal(&inst);
        }
    }

    #[test]
    fn single_slot() {
        let inst = Instance::new(100, 1.0, vec![Cost::abs(3.0, 77.0)]).unwrap();
        let sol = solve(&inst);
        assert_eq!(sol.schedule, Schedule(vec![77]));
    }

    #[test]
    fn empty_horizon() {
        let inst = Instance::new(32, 1.0, vec![]).unwrap();
        assert_eq!(solve(&inst).cost, 0.0);
    }

    #[test]
    fn large_m_spiky_workload() {
        let costs: Vec<Cost> = (0..20)
            .map(|t| {
                let target = if t % 7 == 0 { 200.0 } else { 10.0 + t as f64 };
                Cost::abs(2.0, target)
            })
            .collect();
        let inst = Instance::new(256, 5.0, costs).unwrap();
        assert_optimal(&inst);
    }

    #[test]
    fn restricted_model_instances() {
        let unit = Unit::Server(ServerParams::default());
        let lambdas: Vec<f64> = (0..15).map(|t| 1.0 + (t % 5) as f64 * 1.7).collect();
        let r = RestrictedInstance::new(12, 3.0, unit, lambdas).unwrap();
        let g = r.to_general();
        assert_optimal(&g);
    }

    #[test]
    fn beta_extremes() {
        let costs: Vec<Cost> = (0..8).map(|t| Cost::abs(1.0, (t % 4) as f64)).collect();
        for beta in [1e-6, 1.0, 1e6] {
            let inst = Instance::new(8, beta, costs.clone()).unwrap();
            assert_optimal(&inst);
        }
    }
}
