//! Dynamic program restricted to explicit per-column state sets.
//!
//! The binary-search algorithm of Section 2.2 repeatedly solves the problem
//! on a graph whose columns contain at most five states each. This module
//! provides that solver for arbitrary per-column allowed sets; with sets of
//! constant size each step costs `O(1)`, so a whole pass is `O(T)`.

use crate::dp::Solution;
use rsdc_core::prelude::*;

/// Solve the instance where column `t` (1-based) may only use the states in
/// `allowed[t - 1]` (each list must be non-empty; values `<= m`).
///
/// Runs in `O(sum_t |allowed_t| * |allowed_{t-1}|)` time. Ties are broken
/// toward smaller predecessor states.
pub fn solve_restricted(inst: &Instance, allowed: &[Vec<u32>]) -> Solution {
    assert_eq!(
        allowed.len(),
        inst.horizon(),
        "one allowed-state set per slot"
    );
    let t_len = inst.horizon();
    if t_len == 0 {
        return Solution {
            schedule: Schedule::zeros(0),
            cost: 0.0,
        };
    }
    let beta = inst.beta();

    // dp[i] = best cost ending at allowed[t][i]; parent[t][i] = index into
    // allowed[t - 1]. The virtual column t = 0 is the single state 0.
    let mut prev_states: Vec<u32> = vec![0];
    let mut prev_cost: Vec<f64> = vec![0.0];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(t_len);

    for t in 1..=t_len {
        let states = &allowed[t - 1];
        assert!(!states.is_empty(), "allowed set for slot {t} is empty");
        let f = inst.cost_fn(t);
        let mut cost_col = Vec::with_capacity(states.len());
        let mut parent_col = Vec::with_capacity(states.len());
        for &j in states {
            debug_assert!(j <= inst.m());
            let mut best = f64::INFINITY;
            let mut best_i = 0u32;
            for (i, &jp) in prev_states.iter().enumerate() {
                let switch = beta * (j.saturating_sub(jp)) as f64;
                let c = prev_cost[i] + switch;
                if c < best {
                    best = c;
                    best_i = i as u32;
                }
            }
            cost_col.push(best + f.eval(j));
            parent_col.push(best_i);
        }
        parents.push(parent_col);
        prev_states = states.clone();
        prev_cost = cost_col;
    }
    let _ = prev_states.len();

    let (mut idx, cost) = prev_cost
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in DP"))
        .map(|(i, &c)| (i, c))
        .expect("non-empty column");

    let mut xs = vec![0u32; t_len];
    for t in (1..=t_len).rev() {
        xs[t - 1] = allowed[t - 1][idx];
        idx = parents[t - 1][idx] as usize;
    }

    Solution {
        schedule: Schedule(xs),
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use rsdc_core::cost::Cost;

    #[test]
    fn full_state_sets_match_dp() {
        let costs = vec![
            Cost::quadratic(1.0, 2.0, 0.0),
            Cost::abs(3.0, 1.0),
            Cost::quadratic(0.5, 4.0, 0.0),
        ];
        let inst = Instance::new(4, 1.5, costs).unwrap();
        let all: Vec<Vec<u32>> = (0..3).map(|_| (0..=4).collect()).collect();
        let a = solve_restricted(&inst, &all);
        let b = dp::solve(&inst);
        assert!((a.cost - b.cost).abs() < 1e-12);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn restriction_can_only_increase_cost() {
        let costs = vec![Cost::abs(2.0, 3.0), Cost::abs(2.0, 3.0)];
        let inst = Instance::new(6, 1.0, costs).unwrap();
        let restricted: Vec<Vec<u32>> = vec![vec![0, 2, 4, 6], vec![0, 2, 4, 6]];
        let a = solve_restricted(&inst, &restricted);
        let b = dp::solve(&inst);
        assert!(a.cost >= b.cost - 1e-12);
        // Optimal unrestricted parks at 3; restricted must use 2 or 4.
        assert!(a.cost > b.cost);
        assert!(a.schedule.0.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn singleton_columns_force_schedule() {
        let costs = vec![Cost::Zero, Cost::Zero, Cost::Zero];
        let inst = Instance::new(4, 2.0, costs).unwrap();
        let allowed = vec![vec![3], vec![1], vec![4]];
        let s = solve_restricted(&inst, &allowed);
        assert_eq!(s.schedule, Schedule(vec![3, 1, 4]));
        // switching: 3 + 0 + 3 powered up = 6 * beta
        assert!((s.cost - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_horizon() {
        let inst = Instance::new(4, 1.0, vec![]).unwrap();
        let s = solve_restricted(&inst, &[]);
        assert_eq!(s.cost, 0.0);
    }
}
