//! Fractional optima and Lemma 4 rounding.
//!
//! For the continuous extension `\bar P` of a discrete instance (eq. 3,
//! piecewise-linear interpolation), Lemma 4 states that flooring or ceiling
//! an optimal fractional schedule yields another optimal schedule. An
//! immediate corollary: the fractional optimum *value* equals the discrete
//! optimum value, so the discrete DP already solves `\bar P`.
//!
//! This module exposes that corollary ([`fractional_optimum`]) plus an
//! independent check ([`refined_grid_optimum`]) that solves `\bar P` on a
//! grid of states with resolution `1/k` — the value must not drop below the
//! discrete optimum, which is how tests certify Lemma 4 without trusting it.

use crate::dp;
use rsdc_core::prelude::*;

/// An optimal schedule for the continuous extension `\bar P`, as a
/// fractional schedule, with its cost. By Lemma 4 an integral optimum
/// exists, so this simply lifts the discrete DP solution.
pub fn fractional_optimum(inst: &Instance) -> (FracSchedule, f64) {
    let sol = dp::solve(inst);
    let frac = sol.schedule.to_frac();
    (frac, sol.cost)
}

/// Solve the continuous extension restricted to states `{i / k | i in
/// 0..=k*m}` by running the DP on a scaled instance whose cost functions
/// are the eq. 3 interpolations. Used to certify that refining the grid
/// does not beat the integral optimum (Lemma 4 corollary).
pub fn refined_grid_optimum(inst: &Instance, k: u32) -> f64 {
    assert!(k >= 1);
    let m_fine = inst
        .m()
        .checked_mul(k)
        .expect("refined grid too large for u32");
    let costs = inst
        .cost_fns()
        .iter()
        .map(|f| {
            let vals: Vec<f64> = (0..=m_fine)
                .map(|i| f.interpolate(i as f64 / k as f64))
                .collect();
            Cost::table(vals)
        })
        .collect();
    // State i of the fine instance is i/k servers; one unit of powering up
    // there is 1/k servers, so beta scales down by k.
    let fine = Instance::new(m_fine, inst.beta() / k as f64, costs).expect("valid scaled instance");
    dp::solve_cost_only(&fine)
}

/// Check that a fractional schedule's floor and ceil cost no more than the
/// schedule itself under the continuous extension (the Lemma 4 guarantee
/// applied to an *optimal* input; for arbitrary inputs the floor/ceil may
/// be worse, so callers pass optima). Returns `(floor_cost, ceil_cost,
/// frac_cost)`.
pub fn floor_ceil_costs(inst: &Instance, frac: &FracSchedule) -> (f64, f64, f64) {
    let fc = frac_cost(inst, frac, FracMode::Interpolate);
    let lo = cost(inst, &frac.floor());
    let hi = cost(inst, &frac.ceil());
    (lo, hi, fc)
}

/// A deterministic "sawtooth" fractional schedule used by tests: the
/// midpoint between the integral optimum and its shift by one, clipped to
/// `[0, m]`. Exercises rounding paths on genuinely fractional inputs.
pub fn midpoint_perturbation(inst: &Instance) -> FracSchedule {
    let sol = dp::solve(inst);
    FracSchedule(
        sol.schedule
            .0
            .iter()
            .map(|&x| (x as f64 + 0.5).min(inst.m() as f64))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_core::cost::Cost;

    fn inst() -> Instance {
        Instance::new(
            6,
            1.3,
            vec![
                Cost::quadratic(1.0, 2.5, 0.0),
                Cost::quadratic(0.7, 4.0, 0.2),
                Cost::abs(2.0, 1.0),
                Cost::quadratic(0.4, 5.5, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fractional_value_equals_discrete() {
        let i = inst();
        let (frac, val) = fractional_optimum(&i);
        assert!((frac_cost(&i, &frac, FracMode::Interpolate) - val).abs() < 1e-9);
        assert!((val - dp::solve(&i).cost).abs() < 1e-12);
    }

    #[test]
    fn grid_refinement_does_not_improve() {
        let i = inst();
        let discrete = dp::solve_cost_only(&i);
        for k in [2, 3, 4, 8] {
            let fine = refined_grid_optimum(&i, k);
            assert!(
                fine >= discrete - 1e-7,
                "grid 1/{k} gave {fine} < discrete {discrete}"
            );
            // The integral optimum is also feasible on the grid.
            assert!(fine <= discrete + 1e-7);
        }
    }

    #[test]
    fn floor_ceil_of_optimum_are_optimal() {
        let i = inst();
        let (frac, val) = fractional_optimum(&i);
        let (lo, hi, fc) = floor_ceil_costs(&i, &frac);
        assert!((fc - val).abs() < 1e-9);
        // The lifted optimum is integral, so floor and ceil reproduce it.
        assert!((lo - val).abs() < 1e-9);
        assert!((hi - val).abs() < 1e-9);
    }

    #[test]
    fn midpoint_rounding_brackets_cost() {
        let i = inst();
        let mid = midpoint_perturbation(&i);
        let (lo, hi, fc) = floor_ceil_costs(&i, &mid);
        // The interpolated cost of the midpoint is a convex combination of
        // integer evaluations, so min(floor-op, ceil-op) cannot exceed it by
        // much; we only assert the computation runs and is finite here —
        // the strong statement (Lemma 4) applies to optima, covered above.
        assert!(lo.is_finite() && hi.is_finite() && fc.is_finite());
    }
}
