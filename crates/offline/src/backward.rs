//! The Lemma 11 backward-greedy optimal solver.
//!
//! Lemma 11 characterises one particular optimal schedule: with the bounds
//! `x^L_t` (smallest final state of an optimal power-up-charged truncated
//! schedule) and `x^U_t` (largest final state, power-down-charged), the
//! schedule defined backwards in time by
//!
//! ```text
//! x_{T+1} = 0,    x_t = [ x_{t+1} ]^{x^U_t}_{x^L_t}
//! ```
//!
//! is optimal. This is the schedule the LCP analysis compares against
//! (Lemmas 12–16), so having it as a first-class solver lets tests verify
//! the structural facts directly:
//!
//! * its cost equals the DP optimum (Lemma 11),
//! * between consecutive meeting points of LCP and this schedule, both move
//!   in the same direction (Lemma 13),
//! * LCP's switching cost is at most this schedule's (Lemma 14).

use crate::dp::Solution;
use rsdc_core::prelude::*;

/// The per-slot bounds `(x^L_t, x^U_t)` for every `t`, computed in one
/// forward pass (`O(T m)` total).
pub fn bound_trajectories(inst: &Instance) -> (Vec<u32>, Vec<u32>) {
    let m1 = inst.m() as usize + 1;
    let beta = inst.beta();

    let mut c_low = vec![f64::INFINITY; m1];
    c_low[0] = 0.0;
    let mut c_up = c_low.clone();
    let mut scratch = vec![0.0; m1];
    let mut parent = vec![0u32; m1];

    let mut lows = Vec::with_capacity(inst.horizon());
    let mut ups = Vec::with_capacity(inst.horizon());

    for t in 1..=inst.horizon() {
        let f = inst.cost_fn(t);
        crate::dp::relax(&c_low, beta, &mut scratch, &mut parent);
        for (x, v) in scratch.iter_mut().enumerate() {
            *v += f.eval(x as u32);
        }
        std::mem::swap(&mut c_low, &mut scratch);

        crate::dp::relax_down(&c_up, beta, &mut scratch, &mut parent);
        for (x, v) in scratch.iter_mut().enumerate() {
            *v += f.eval(x as u32);
        }
        std::mem::swap(&mut c_up, &mut scratch);

        let x_low = smallest_argmin(&c_low);
        let x_up = largest_argmin(&c_up);
        lows.push(x_low);
        ups.push(x_up);
    }
    (lows, ups)
}

/// Solve via the Lemma 11 recursion. Exact; `O(T m)`.
pub fn solve(inst: &Instance) -> Solution {
    let (lows, ups) = bound_trajectories(inst);
    let t_len = inst.horizon();
    let mut xs = vec![0u32; t_len];
    let mut next = 0u32; // x_{T+1} = 0
    for t in (0..t_len).rev() {
        let (lo, hi) = (lows[t], ups[t]);
        debug_assert!(lo <= hi, "Lemma 6 ordering violated at t = {}", t + 1);
        next = next.clamp(lo, hi);
        xs[t] = next;
    }
    let schedule = Schedule(xs);
    let cost = cost(inst, &schedule);
    Solution { schedule, cost }
}

fn smallest_argmin(v: &[f64]) -> u32 {
    let mut best = f64::INFINITY;
    let mut best_i = 0u32;
    for (i, &x) in v.iter().enumerate() {
        if x < best {
            best = x;
            best_i = i as u32;
        }
    }
    best_i
}

fn largest_argmin(v: &[f64]) -> u32 {
    let mut best = f64::INFINITY;
    let mut best_i = 0u32;
    for (i, &x) in v.iter().enumerate() {
        if x <= best {
            best = x;
            best_i = i as u32;
        }
    }
    best_i
}

/// Decompose `[0, T]` into the maximal intervals between meeting points of
/// two schedules (the `t_0 < t_1 < ... < t_kappa` of the LCP analysis),
/// returning for each interior interval whether schedule `a` sits strictly
/// above `b` (`true`) or strictly below (`false`). Panics if the schedules
/// have different lengths.
pub fn crossing_structure(a: &Schedule, b: &Schedule) -> Vec<(std::ops::Range<usize>, bool)> {
    assert_eq!(a.len(), b.len());
    let mut out = Vec::new();
    let mut start: Option<(usize, bool)> = None;
    for t in 0..a.len() {
        let (xa, xb) = (a.0[t], b.0[t]);
        match (&mut start, xa.cmp(&xb)) {
            (None, std::cmp::Ordering::Equal) => {}
            (None, std::cmp::Ordering::Greater) => start = Some((t, true)),
            (None, std::cmp::Ordering::Less) => start = Some((t, false)),
            (Some((s, above)), std::cmp::Ordering::Equal) => {
                out.push((*s..t, *above));
                start = None;
            }
            (Some((s, above)), ord) => {
                // Lemma 12: schedules cannot cross without meeting.
                let crossing = (*above && ord == std::cmp::Ordering::Less)
                    || (!*above && ord == std::cmp::Ordering::Greater);
                if crossing {
                    out.push((*s..t, *above));
                    start = Some((t, ord == std::cmp::Ordering::Greater));
                }
            }
        }
    }
    if let Some((s, above)) = start {
        out.push((s..a.len(), above));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binsearch, dp};
    use rsdc_core::cost::Cost;

    fn wavy(m: u32, t_len: usize, beta: f64) -> Instance {
        let costs = (0..t_len)
            .map(|t| {
                let target = (m as f64 / 2.0) * (1.0 + ((t as f64) * 0.9).sin());
                Cost::abs(1.0 + (t % 3) as f64, target)
            })
            .collect();
        Instance::new(m, beta, costs).unwrap()
    }

    #[test]
    fn lemma11_schedule_is_optimal() {
        for (m, t_len, beta) in [(6, 20, 1.0), (9, 33, 4.0), (4, 12, 0.3)] {
            let inst = wavy(m, t_len, beta);
            let a = solve(&inst);
            let b = dp::solve(&inst);
            assert!(
                (a.cost - b.cost).abs() < 1e-9 * (1.0 + b.cost),
                "backward {} vs dp {}",
                a.cost,
                b.cost
            );
        }
    }

    #[test]
    fn bounds_are_ordered_and_match_tracker() {
        let inst = wavy(7, 25, 2.0);
        let (lows, ups) = bound_trajectories(&inst);
        for (l, u) in lows.iter().zip(&ups) {
            assert!(l <= u, "Lemma 6 ordering");
        }
        // Spot check: the final lower bound equals the smallest final state
        // of an optimal schedule (smallest argmin of the full-instance DP
        // column), consistent with Lemma 6.
        let opt = dp::solve(&inst);
        let last = inst.horizon() - 1;
        assert!(lows[last] <= opt.schedule.0[last]);
        assert!(opt.schedule.0[last] <= ups[last]);
    }

    #[test]
    fn agrees_with_binsearch() {
        let inst = wavy(16, 30, 1.5);
        let a = solve(&inst);
        let b = binsearch::solve(&inst);
        assert!((a.cost - b.cost).abs() < 1e-9 * (1.0 + b.cost));
    }

    #[test]
    fn crossing_structure_detects_intervals() {
        let a = Schedule(vec![2, 3, 3, 1, 1, 2]);
        let b = Schedule(vec![2, 1, 1, 1, 3, 2]);
        let cs = crossing_structure(&a, &b);
        // a above b on 1..3, equal at 3 (both 1), below on 4..5, equal at 5.
        assert_eq!(cs, vec![(1..3, true), (4..5, false)]);
    }

    #[test]
    fn crossing_structure_empty_when_equal() {
        let a = Schedule(vec![1, 2, 3]);
        assert!(crossing_structure(&a, &a).is_empty());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(4, 1.0, vec![]).unwrap();
        assert_eq!(solve(&inst).cost, 0.0);
    }
}
