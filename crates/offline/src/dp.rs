//! Exact dynamic program over all `m + 1` states.
//!
//! This is the pseudo-polynomial shortest-path computation of Section 2.1,
//! implemented in `O(T m)` time instead of the naive `O(T m^2)`: the
//! transition
//!
//! ```text
//! C_t(j) = f_t(j) + min_{j'} ( C_{t-1}(j') + beta * (j - j')^+ )
//! ```
//!
//! splits into a *prefix* candidate (`j' <= j`, pays `beta (j - j')`) and a
//! *suffix* candidate (`j' >= j`, pays nothing), each computable for all `j`
//! by a single scan.
//!
//! The same scan is exposed as [`relax`] because the online algorithms of
//! Section 3 maintain exactly these value vectors (`\hat C^L_tau`).

use rsdc_core::prelude::*;

/// An optimal schedule together with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// An optimal integral schedule.
    pub schedule: Schedule,
    /// Its total cost under eq. (1).
    pub cost: f64,
}

/// One DP relaxation step *without* the operating cost: given the previous
/// column's values `prev`, writes `min_{j'} (prev[j'] + beta (j - j')^+)`
/// into `out` and the minimizing `j'` into `parent` (ties broken toward
/// smaller `j'`, then toward staying — see note below).
///
/// Tie-breaking: among equal-cost predecessors we prefer the one requiring
/// the least powering-up (the largest `j' >= j` candidate is never preferred
/// over an equal prefix candidate; within the suffix we keep the smallest
/// such `j'`). Any consistent rule yields an optimal schedule.
pub fn relax(prev: &[f64], beta: f64, out: &mut [f64], parent: &mut [u32]) {
    let m1 = prev.len();
    debug_assert_eq!(out.len(), m1);
    debug_assert_eq!(parent.len(), m1);

    // Prefix pass: best_{j' <= j} (prev[j'] - beta j') + beta j.
    let mut best = f64::INFINITY;
    let mut best_j = 0u32;
    for j in 0..m1 {
        let cand = prev[j] - beta * j as f64;
        if cand < best {
            best = cand;
            best_j = j as u32;
        }
        out[j] = best + beta * j as f64;
        parent[j] = best_j;
    }

    // Suffix pass: best_{j' >= j} prev[j'].
    let mut best = f64::INFINITY;
    let mut best_j = (m1 - 1) as u32;
    for j in (0..m1).rev() {
        if prev[j] <= best {
            best = prev[j];
            best_j = j as u32;
        }
        if best < out[j] {
            out[j] = best;
            parent[j] = best_j;
        }
    }
}

/// Mirror of [`relax`] for the `C^U` convention (eq. 12), where switching
/// cost is charged for powering **down**: writes
/// `min_{j'} (prev[j'] + beta (j' - j)^+)` into `out`.
pub fn relax_down(prev: &[f64], beta: f64, out: &mut [f64], parent: &mut [u32]) {
    let m1 = prev.len();
    debug_assert_eq!(out.len(), m1);
    debug_assert_eq!(parent.len(), m1);

    // Prefix pass: best_{j' <= j} prev[j'] (no charge for powering up).
    let mut best = f64::INFINITY;
    let mut best_j = 0u32;
    for j in 0..m1 {
        if prev[j] < best {
            best = prev[j];
            best_j = j as u32;
        }
        out[j] = best;
        parent[j] = best_j;
    }

    // Suffix pass: best_{j' >= j} (prev[j'] + beta j') - beta j.
    let mut best = f64::INFINITY;
    let mut best_j = (m1 - 1) as u32;
    for j in (0..m1).rev() {
        let cand = prev[j] + beta * j as f64;
        if cand <= best {
            best = cand;
            best_j = j as u32;
        }
        let v = best - beta * j as f64;
        if v < out[j] {
            out[j] = v;
            parent[j] = best_j;
        }
    }
}

/// Solve the instance exactly, returning an optimal schedule.
///
/// `O(T m)` time, `O(T m)` memory for parent pointers. For cost-only runs
/// over very large instances use [`solve_cost_only`].
pub fn solve(inst: &Instance) -> Solution {
    let t_len = inst.horizon();
    let m1 = inst.m() as usize + 1;
    if t_len == 0 {
        return Solution {
            schedule: Schedule::zeros(0),
            cost: 0.0,
        };
    }

    let mut prev = vec![f64::INFINITY; m1];
    prev[0] = 0.0; // x_0 = 0
    let mut cur = vec![0.0f64; m1];
    let mut scratch_parent = vec![0u32; m1];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(t_len);

    for t in 1..=t_len {
        relax(&prev, inst.beta(), &mut cur, &mut scratch_parent);
        let f = inst.cost_fn(t);
        for (j, c) in cur.iter_mut().enumerate() {
            *c += f.eval(j as u32);
        }
        parents.push(scratch_parent.clone());
        std::mem::swap(&mut prev, &mut cur);
    }

    // Final state: powering down is free, so take the cheapest end state.
    let (mut j, cost) = prev
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("DP values must not be NaN"))
        .map(|(j, &c)| (j as u32, c))
        .expect("m >= 1 implies a non-empty DP column");

    let mut xs = vec![0u32; t_len];
    for t in (1..=t_len).rev() {
        xs[t - 1] = j;
        j = parents[t - 1][j as usize];
    }
    debug_assert_eq!(j, 0, "schedules must start from x_0 = 0");

    Solution {
        schedule: Schedule(xs),
        cost,
    }
}

/// Optimal cost only, `O(m)` memory.
pub fn solve_cost_only(inst: &Instance) -> f64 {
    let t_len = inst.horizon();
    let m1 = inst.m() as usize + 1;
    if t_len == 0 {
        return 0.0;
    }
    let mut prev = vec![f64::INFINITY; m1];
    prev[0] = 0.0;
    let mut cur = vec![0.0f64; m1];
    let mut parent = vec![0u32; m1];
    for t in 1..=t_len {
        relax(&prev, inst.beta(), &mut cur, &mut parent);
        let f = inst.cost_fn(t);
        for (j, c) in cur.iter_mut().enumerate() {
            *c += f.eval(j as u32);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_core::cost::Cost;

    fn inst(m: u32, beta: f64, costs: Vec<Cost>) -> Instance {
        Instance::new(m, beta, costs).unwrap()
    }

    #[test]
    fn empty_instance() {
        let i = inst(4, 1.0, vec![]);
        let s = solve(&i);
        assert_eq!(s.cost, 0.0);
        assert!(s.schedule.is_empty());
    }

    #[test]
    fn single_slot_tradeoff() {
        // f(x) = 4*|x - 3|, beta = 1: moving to 3 costs 3*beta, saves 12.
        let i = inst(8, 1.0, vec![Cost::abs(4.0, 3.0)]);
        let s = solve(&i);
        assert_eq!(s.schedule, Schedule(vec![3]));
        assert!((s.cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_slot_not_worth_switching() {
        // f(x) = 0.1*|x - 3|, beta = 10: cheaper to stay at 0.
        let i = inst(8, 10.0, vec![Cost::abs(0.1, 3.0)]);
        let s = solve(&i);
        assert_eq!(s.schedule, Schedule(vec![0]));
        assert!((s.cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lazy_behavior_avoids_oscillation() {
        // Alternating targets 2 and 0 with huge beta: optimal parks between.
        let costs = vec![
            Cost::abs(1.0, 2.0),
            Cost::abs(1.0, 0.0),
            Cost::abs(1.0, 2.0),
            Cost::abs(1.0, 0.0),
        ];
        let i = inst(4, 100.0, costs);
        let s = solve(&i);
        // With beta = 100 any power-up costs 100 and saves at most 8.
        assert_eq!(s.schedule, Schedule(vec![0, 0, 0, 0]));
        assert!((s.cost - 4.0).abs() < 1e-12);
    }

    #[test]
    fn oscillation_when_beta_small() {
        let costs = vec![
            Cost::abs(10.0, 2.0),
            Cost::abs(10.0, 0.0),
            Cost::abs(10.0, 2.0),
        ];
        let i = inst(4, 0.5, costs);
        let s = solve(&i);
        assert_eq!(s.schedule, Schedule(vec![2, 0, 2]));
        // switching: 2*0.5 + 0 + 2*0.5 = 2
        assert!((s.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_small() {
        // 3 slots, m = 3: enumerate all 4^3 schedules.
        let costs = vec![
            Cost::table(vec![3.0, 1.0, 0.5, 2.0]),
            Cost::table(vec![0.2, 1.0, 2.0, 3.0]),
            Cost::table(vec![5.0, 2.0, 1.0, 0.8]),
        ];
        let i = inst(3, 1.5, costs);
        let s = solve(&i);
        let mut best = f64::INFINITY;
        for a in 0..=3u32 {
            for b in 0..=3u32 {
                for c in 0..=3u32 {
                    let x = Schedule(vec![a, b, c]);
                    best = best.min(cost(&i, &x));
                }
            }
        }
        assert!(
            (s.cost - best).abs() < 1e-9,
            "dp {} vs brute {best}",
            s.cost
        );
        assert!((cost(&i, &s.schedule) - s.cost).abs() < 1e-9);
    }

    #[test]
    fn infeasible_states_are_avoided() {
        // Restricted-model style: x >= 2 forced at slot 2.
        let costs = vec![
            Cost::Zero,
            Cost::table(vec![f64::INFINITY, f64::INFINITY, 1.0, 2.0]),
            Cost::Zero,
        ];
        let i = inst(3, 1.0, costs);
        let s = solve(&i);
        assert!(s.schedule.0[1] >= 2);
        assert!(s.cost.is_finite());
    }

    #[test]
    fn cost_only_matches_solve() {
        let costs = vec![
            Cost::quadratic(1.0, 2.0, 0.0),
            Cost::quadratic(0.5, 4.0, 1.0),
            Cost::abs(2.0, 1.0),
        ];
        let i = inst(6, 1.25, costs);
        assert!((solve(&i).cost - solve_cost_only(&i)).abs() < 1e-12);
    }

    #[test]
    fn schedule_cost_consistency() {
        let costs: Vec<Cost> = (0..6)
            .map(|t| Cost::quadratic(0.3 + 0.1 * t as f64, (t % 4) as f64, 0.0))
            .collect();
        let i = inst(5, 0.75, costs);
        let s = solve(&i);
        assert!(s.schedule.is_feasible(&i));
        assert!((cost(&i, &s.schedule) - s.cost).abs() < 1e-9);
    }

    #[test]
    fn relax_prefers_cheapest_transition() {
        let prev = vec![0.0, 10.0, 1.0];
        let mut out = vec![0.0; 3];
        let mut parent = vec![0u32; 3];
        relax(&prev, 2.0, &mut out, &mut parent);
        // j = 0: staying (j'=0, cost 0) vs suffix min(10, 1) = 1 -> 0 wins.
        assert_eq!(out[0], 0.0);
        assert_eq!(parent[0], 0);
        // j = 2: from 0 pay 4, from 2 pay 1 -> 1.
        assert_eq!(out[2], 1.0);
        assert_eq!(parent[2], 2);
    }

    #[test]
    fn relax_down_charges_power_down() {
        let prev = vec![0.0, 10.0, 1.0];
        let mut out = vec![0.0; 3];
        let mut parent = vec![0u32; 3];
        relax_down(&prev, 2.0, &mut out, &mut parent);
        // j = 0: from 0 free (0), from 2 pay 2*2 = 4 + 1 = 5 -> 0.
        assert_eq!(out[0], 0.0);
        assert_eq!(parent[0], 0);
        // j = 2: from below free: min(0, 10) = 0; from 2: 1. -> 0.
        assert_eq!(out[2], 0.0);
        assert_eq!(parent[2], 0);
        // j = 1: prefix min(0, 10) = 0; suffix: prev[2] + beta = 1+4-2 = 3.
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn m_equals_one() {
        let i = inst(1, 1.0, vec![Cost::abs(5.0, 1.0), Cost::abs(5.0, 1.0)]);
        let s = solve(&i);
        assert_eq!(s.schedule, Schedule(vec![1, 1]));
        assert!((s.cost - 1.0).abs() < 1e-12);
    }
}
