//! Explicit layered-graph model of the problem (Section 2.1, Figure 1).
//!
//! Vertices `v_{t,j}` for `t in [T]`, `j in [m]_0`, plus source `v_{0,0}`
//! and sink `v_{T+1,0}`. An edge `v_{t-1,j} -> v_{t,j'}` has weight
//! `beta (j' - j)^+ + f_t(j')`; edges `v_{T,j} -> v_{T+1,0}` have weight 0.
//! Source-to-sink paths correspond one-to-one with schedules, and path
//! length equals schedule cost.
//!
//! This module exists as the executable specification of the model: the
//! shortest path here must equal the DP/binary-search optimum (tested), and
//! [`Graph::to_dot`] renders Figure 1 for small instances.

use crate::dp::Solution;
use rsdc_core::prelude::*;

/// Identifier of a vertex in the layered graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vertex {
    /// The source `v_{0,0}`.
    Source,
    /// `v_{t,j}`: `j` active servers at slot `t` (1-based `t`).
    State {
        /// Time slot, `1..=T`.
        t: u32,
        /// Active servers, `0..=m`.
        j: u32,
    },
    /// The sink `v_{T+1,0}`.
    Sink,
}

/// The explicit layered graph of an instance.
#[derive(Debug, Clone)]
pub struct Graph {
    m: u32,
    t_len: usize,
    beta: f64,
    /// `weights[t-1][j][j']` = edge weight `v_{t-1,j} -> v_{t,j'}`; layer 0
    /// collapses `j` to the single source state.
    layers: Vec<Vec<Vec<f64>>>,
}

impl Graph {
    /// Materialise the layered graph (`O(T m^2)` memory — intended for
    /// small/medium instances, tests and visualisation).
    pub fn build(inst: &Instance) -> Self {
        let m1 = inst.m() as usize + 1;
        let t_len = inst.horizon();
        let beta = inst.beta();
        let mut layers = Vec::with_capacity(t_len);
        for t in 1..=t_len {
            let f = inst.cost_fn(t);
            let from_states = if t == 1 { 1 } else { m1 };
            let mut layer = Vec::with_capacity(from_states);
            for j in 0..from_states {
                let mut row = Vec::with_capacity(m1);
                for jp in 0..m1 {
                    let up = (jp as i64 - j as i64).max(0) as f64;
                    row.push(beta * up + f.eval(jp as u32));
                }
                layer.push(row);
            }
            layers.push(layer);
        }
        Graph {
            m: inst.m(),
            t_len,
            beta,
            layers,
        }
    }

    /// Number of vertices (including source and sink).
    pub fn vertex_count(&self) -> usize {
        if self.t_len == 0 {
            2
        } else {
            2 + self.t_len * (self.m as usize + 1)
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        let m1 = self.m as usize + 1;
        match self.t_len {
            0 => 1,
            1 => 2 * m1,
            t => m1 + (t - 1) * m1 * m1 + m1,
        }
    }

    /// Edge weight `v_{t-1,j} -> v_{t,j'}` (with `t = 1` requiring `j = 0`).
    pub fn weight(&self, t: u32, j: u32, jp: u32) -> f64 {
        let layer = &self.layers[(t - 1) as usize];
        let j_idx = if t == 1 {
            assert_eq!(j, 0, "layer 1 edges start at the source");
            0
        } else {
            j as usize
        };
        layer[j_idx][jp as usize]
    }

    /// Shortest source-to-sink path, i.e. an optimal schedule. Runs the
    /// natural forward DAG relaxation (`O(T m^2)`).
    pub fn shortest_path(&self) -> Solution {
        let m1 = self.m as usize + 1;
        if self.t_len == 0 {
            return Solution {
                schedule: Schedule::zeros(0),
                cost: 0.0,
            };
        }
        let mut dist = vec![f64::INFINITY; m1];
        let mut parents: Vec<Vec<u32>> = Vec::with_capacity(self.t_len);

        // Layer 1 from the source.
        dist[..m1].copy_from_slice(&self.layers[0][0][..m1]);
        parents.push(vec![0; m1]);

        for t in 2..=self.t_len {
            let layer = &self.layers[t - 1];
            let mut next = vec![f64::INFINITY; m1];
            let mut parent = vec![0u32; m1];
            for (j, row) in layer.iter().enumerate() {
                if dist[j].is_infinite() {
                    continue;
                }
                for (jp, w) in row.iter().enumerate() {
                    let cand = dist[j] + w;
                    if cand < next[jp] {
                        next[jp] = cand;
                        parent[jp] = j as u32;
                    }
                }
            }
            dist = next;
            parents.push(parent);
        }

        let (mut j, cost) = dist
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .map(|(j, &c)| (j as u32, c))
            .expect("non-empty layer");

        let mut xs = vec![0u32; self.t_len];
        for t in (1..=self.t_len).rev() {
            xs[t - 1] = j;
            j = parents[t - 1][j as usize];
        }
        Solution {
            schedule: Schedule(xs),
            cost,
        }
    }

    /// Render the graph in Graphviz DOT format (Figure 1). Intended for
    /// small instances; edges carry their weights as labels.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph G {{");
        let _ = writeln!(s, "  rankdir=LR;");
        let _ = writeln!(s, "  v0_0 [label=\"v(0,0)\"];");
        for t in 1..=self.t_len {
            for j in 0..=self.m {
                let _ = writeln!(s, "  v{t}_{j} [label=\"v({t},{j})\"];");
            }
        }
        let _ = writeln!(s, "  vT_0 [label=\"v({},0)\"];", self.t_len + 1);
        if self.t_len > 0 {
            for jp in 0..=self.m {
                let w = self.weight(1, 0, jp);
                let _ = writeln!(s, "  v0_0 -> v1_{jp} [label=\"{w:.3}\"];");
            }
            for t in 2..=self.t_len as u32 {
                for j in 0..=self.m {
                    for jp in 0..=self.m {
                        let w = self.weight(t, j, jp);
                        let _ = writeln!(s, "  v{}_{j} -> v{t}_{jp} [label=\"{w:.3}\"];", t - 1);
                    }
                }
            }
            for j in 0..=self.m {
                let _ = writeln!(s, "  v{}_{j} -> vT_0 [label=\"0\"];", self.t_len);
            }
        } else {
            let _ = writeln!(s, "  v0_0 -> vT_0 [label=\"0\"];");
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// The switching-cost parameter the graph was built with.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binsearch, dp};
    use rsdc_core::cost::Cost;

    fn toy() -> Instance {
        Instance::new(
            3,
            2.0,
            vec![
                Cost::abs(1.0, 2.0),
                Cost::abs(1.0, 0.0),
                Cost::abs(1.0, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_match_figure1_structure() {
        let g = Graph::build(&toy());
        // 2 + T*(m+1) vertices = 2 + 3*4 = 14
        assert_eq!(g.vertex_count(), 14);
        // (m+1) from source + (T-1)(m+1)^2 between layers + (m+1) to sink
        assert_eq!(g.edge_count(), 4 + 2 * 16 + 4);
    }

    #[test]
    fn edge_weights_match_definition() {
        let inst = toy();
        let g = Graph::build(&inst);
        // v_{1,1} -> v_{2,3}: beta*(3-1)+ + f_2(3) = 4 + 3 = 7
        assert!((g.weight(2, 1, 3) - 7.0).abs() < 1e-12);
        // Powering down is free: v_{1,3} -> v_{2,0} = f_2(0) = 0
        assert!((g.weight(2, 3, 0) - 0.0).abs() < 1e-12);
        // Source edge: beta*j' + f_1(j')
        assert!((g.weight(1, 0, 2) - (4.0 + 0.0)).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_equals_dp_and_binsearch() {
        let inst = toy();
        let g = Graph::build(&inst);
        let sp = g.shortest_path();
        let exact = dp::solve(&inst);
        let fast = binsearch::solve(&inst);
        assert!((sp.cost - exact.cost).abs() < 1e-12);
        assert!((sp.cost - fast.cost).abs() < 1e-9);
        assert!(
            (rsdc_core::schedule::cost(&inst, &sp.schedule) - sp.cost).abs() < 1e-12,
            "path length equals schedule cost"
        );
    }

    #[test]
    fn dot_output_structure() {
        let g = Graph::build(&toy());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph G {"));
        assert!(dot.contains("v0_0 -> v1_0"));
        assert!(dot.contains("v3_3 -> vT_0"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_instance_graph() {
        let inst = Instance::new(2, 1.0, vec![]).unwrap();
        let g = Graph::build(&inst);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.shortest_path().cost, 0.0);
    }
}
