//! Exhaustive search over all `(m + 1)^T` schedules.
//!
//! A deliberately simple oracle used to certify the cleverer solvers in
//! tests. Only usable for tiny instances; [`solve`] panics if the search
//! space exceeds [`MAX_SPACE`].

use crate::dp::Solution;
use rsdc_core::prelude::*;

/// Refuse to enumerate more than this many schedules.
pub const MAX_SPACE: u128 = 20_000_000;

/// Enumerate every schedule and return the best (first in lexicographic
/// order among ties).
pub fn solve(inst: &Instance) -> Solution {
    let t_len = inst.horizon();
    let m1 = inst.m() as u128 + 1;
    let space = m1.pow(t_len as u32);
    assert!(
        space <= MAX_SPACE,
        "brute force space {space} exceeds MAX_SPACE"
    );

    let mut best_cost = f64::INFINITY;
    let mut best = vec![0u32; t_len];
    let mut xs = vec![0u32; t_len];
    loop {
        let c = cost(inst, &Schedule(xs.clone()));
        if c < best_cost {
            best_cost = c;
            best.copy_from_slice(&xs);
        }
        // Odometer increment.
        let mut i = t_len;
        loop {
            if i == 0 {
                return Solution {
                    schedule: Schedule(best),
                    cost: best_cost,
                };
            }
            i -= 1;
            if xs[i] < inst.m() {
                xs[i] += 1;
                break;
            }
            xs[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binsearch, dp};
    use rsdc_core::cost::Cost;

    #[test]
    fn agrees_with_dp_and_binsearch() {
        let costs = vec![
            Cost::table(vec![2.0, 0.5, 1.0, 4.0]),
            Cost::table(vec![0.0, 1.0, 2.0, 3.0]),
            Cost::table(vec![6.0, 3.0, 1.0, 0.0]),
            Cost::table(vec![1.0, 1.0, 1.0, 1.0]),
        ];
        let inst = Instance::new(3, 1.2, costs).unwrap();
        let b = solve(&inst);
        let d = dp::solve(&inst);
        let f = binsearch::solve(&inst);
        assert!((b.cost - d.cost).abs() < 1e-12);
        assert!((b.cost - f.cost).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(3, 1.0, vec![]).unwrap();
        assert_eq!(solve(&inst).cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_SPACE")]
    fn refuses_huge_spaces() {
        let costs: Vec<Cost> = (0..30).map(|_| Cost::Zero).collect();
        let inst = Instance::new(9, 1.0, costs).unwrap();
        let _ = solve(&inst);
    }
}
