//! # rsdc-offline — optimal offline algorithms
//!
//! Solvers for the discrete data-center optimization problem of Albers &
//! Quedenfeld (SPAA 2018), Section 2:
//!
//! * [`dp`] — exact dynamic program, `O(T m)` (the pseudo-polynomial
//!   shortest-path computation, accelerated with prefix/suffix scans);
//! * [`backward`] — the Lemma 11 backward-greedy optimal solver (the
//!   comparison schedule of the LCP analysis);
//! * [`binsearch`] — the paper's polynomial algorithm, `O(T log m)`,
//!   refining a coarse schedule through `log m - 1` five-state passes
//!   (Theorem 1);
//! * [`graph`] — the explicit layered graph of Figure 1 (executable
//!   specification, DOT export);
//! * [`restricted_dp`] — DP over explicit per-column state sets (the
//!   engine behind `binsearch`);
//! * [`brute`] — exhaustive oracle for tests;
//! * [`rounding`] — fractional optima and Lemma 4 floor/ceil rounding.
//!
//! ## Example
//!
//! ```
//! use rsdc_core::prelude::*;
//! use rsdc_offline::{binsearch, dp};
//!
//! let inst = Instance::new(64, 2.0, (0..24).map(|t| {
//!     Cost::quadratic(0.5, 8.0 + 6.0 * ((t as f64) * 0.7).sin(), 0.0)
//! }).collect()).unwrap();
//!
//! let fast = binsearch::solve(&inst);   // O(T log m)
//! let exact = dp::solve(&inst);         // O(T m)
//! assert!((fast.cost - exact.cost).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod backward;
pub mod binsearch;
pub mod brute;
pub mod dp;
pub mod graph;
pub mod restricted_dp;
pub mod rounding;

pub use dp::Solution;
