//! E10 — Theorem 10: a finite prediction window does not help.
//!
//! Compares a receding-horizon controller with window `w` on a hard
//! sequence `F` versus the dilated sequence `F' = dilate(F, n, w)`: as `n`
//! grows, the lookahead advantage (ratio improvement over `w = 0`) must
//! shrink toward zero.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_adversary::dilation::dilate;
use rsdc_core::prelude::*;
use rsdc_online::prediction::RecedingHorizon;
use rsdc_online::traits::{competitive_ratio, run_lookahead};

fn hard_sequence(eps: f64, cycles: usize) -> Instance {
    let period = (2.0 / eps).ceil() as usize;
    let costs = (0..cycles * 2 * period)
        .map(|t| {
            if (t / period).is_multiple_of(2) {
                Cost::phi1(eps)
            } else {
                Cost::phi0(eps)
            }
        })
        .collect();
    Instance::new(1, 2.0, costs).expect("params")
}

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E10",
        "prediction windows under dilation",
        "Theorem 10: dilating each function into n*w scaled copies makes a w-window's advantage \
         vanish as n grows",
        &["w", "n", "T'", "ratio(w)", "ratio(0)", "advantage"],
    );

    let eps = 0.5;
    let base = hard_sequence(eps, 4);
    let w = 3usize;

    let settings: Vec<usize> = vec![1, 2, 6];
    let rows: Vec<_> = settings
        .par_iter()
        .map(|&n| {
            let d = dilate(&base, n, w);
            let mut rh = RecedingHorizon::new(1, 2.0);
            let xs_w = run_lookahead(&mut rh, &d, w);
            let (_, _, ratio_w) = competitive_ratio(&d, &xs_w);
            let mut rh0 = RecedingHorizon::new(1, 2.0);
            let xs_0 = run_lookahead(&mut rh0, &d, 0);
            let (_, _, ratio_0) = competitive_ratio(&d, &xs_0);
            (n, d.horizon(), ratio_w, ratio_0)
        })
        .collect();

    let mut advantages = Vec::new();
    for (n, t_len, ratio_w, ratio_0) in rows {
        let adv = (ratio_0 - ratio_w).max(0.0) / ratio_0;
        advantages.push((n, adv));
        rep.row(vec![
            w.to_string(),
            n.to_string(),
            t_len.to_string(),
            fmt(ratio_w),
            fmt(ratio_0),
            fmt(adv),
        ]);
    }

    advantages.sort_by_key(|&(n, _)| n);
    let first = advantages.first().map(|&(_, a)| a).unwrap_or(0.0);
    let last = advantages.last().map(|&(_, a)| a).unwrap_or(0.0);
    rep.check(
        last <= first + 0.02,
        format!(
            "lookahead advantage does not grow with dilation (n=min: {}, n=max: {})",
            fmt(first),
            fmt(last)
        ),
    );
    rep.check(
        last < 0.25,
        format!("advantage at max dilation is small ({})", fmt(last)),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
