//! E2 — Theorem 1: the binary-search algorithm is exact.
//!
//! Sweeps instance shapes and certifies `cost(binsearch) = cost(DP)` (and
//! `= cost(brute force)` where enumeration is feasible) over random convex
//! instances.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_offline::{binsearch, brute, dp};
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E2",
        "offline optimality cross-check",
        "Theorem 1: the O(T log m) binary-search algorithm computes optimal schedules",
        &[
            "m",
            "T",
            "instances",
            "max |binsearch - DP|",
            "max |DP - brute|",
        ],
    );

    let shapes: &[(u32, usize, usize, bool)] = &[
        // (m, T, instances, check_brute)
        (2, 6, 80, true),
        (3, 7, 60, true),
        (5, 5, 40, true),
        (8, 16, 60, false),
        (13, 24, 40, false),
        (64, 32, 20, false),
        (257, 20, 10, false),
    ];

    let mut all_ok = true;
    for &(m, t_len, n, check_brute) in shapes {
        let cfg = RandomInstanceCfg {
            m,
            t_len,
            ..Default::default()
        };
        let results: Vec<(f64, f64)> = (0..n)
            .into_par_iter()
            .map(|seed| {
                let inst = random_instance(&cfg, 1000 + seed as u64);
                let a = dp::solve(&inst);
                let b = binsearch::solve(&inst);
                let gap_fast = (a.cost - b.cost).abs() / (1.0 + a.cost.abs());
                let gap_brute = if check_brute {
                    let c = brute::solve(&inst);
                    (a.cost - c.cost).abs() / (1.0 + a.cost.abs())
                } else {
                    0.0
                };
                (gap_fast, gap_brute)
            })
            .collect();
        let max_fast = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let max_brute = results.iter().map(|r| r.1).fold(0.0, f64::max);
        all_ok &= max_fast < 1e-9 && max_brute < 1e-9;
        rep.row(vec![
            m.to_string(),
            t_len.to_string(),
            n.to_string(),
            fmt(max_fast),
            if check_brute {
                fmt(max_brute)
            } else {
                "-".into()
            },
        ]);
    }
    rep.check(all_ok, "all solvers agree to 1e-9 relative tolerance");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
