//! E12 — Lemma 4: fractional optima round to integral optima.
//!
//! Certifies, over random instances, that (1) refining the state grid never
//! beats the integral optimum of the continuous extension, and (2) flooring
//! or ceiling the (lifted) fractional optimum preserves optimality.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_offline::{dp, rounding};
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E12",
        "Lemma 4 rounding",
        "Lemma 4: floor/ceil of an optimal fractional schedule remain optimal; hence the \
         continuous extension's optimum equals the discrete optimum",
        &[
            "grid k",
            "instances",
            "max (discrete - grid)/|opt|",
            "max rounding gap",
        ],
    );

    let cfg = RandomInstanceCfg {
        m: 6,
        t_len: 10,
        ..Default::default()
    };
    let n = 60usize;

    let mut all_ok = true;
    for k in [2u32, 3, 5, 8] {
        let gaps: Vec<(f64, f64)> = (0..n)
            .into_par_iter()
            .map(|seed| {
                let inst = random_instance(&cfg, 500 + seed as u64);
                let discrete = dp::solve_cost_only(&inst);
                let fine = rounding::refined_grid_optimum(&inst, k);
                // Grid refinement may only *equal* the discrete optimum.
                let grid_gap = (discrete - fine) / (1.0 + discrete.abs());

                let (frac, val) = rounding::fractional_optimum(&inst);
                let (lo, hi, fc) = rounding::floor_ceil_costs(&inst, &frac);
                let rounding_gap = (lo - val).abs().max((hi - val).abs()).max((fc - val).abs())
                    / (1.0 + val.abs());
                (grid_gap, rounding_gap)
            })
            .collect();
        let max_grid = gaps.iter().map(|g| g.0).fold(f64::NEG_INFINITY, f64::max);
        let max_round = gaps.iter().map(|g| g.1).fold(0.0, f64::max);
        all_ok &= max_grid < 1e-7 && max_round < 1e-9;
        rep.row(vec![
            k.to_string(),
            n.to_string(),
            fmt(max_grid),
            fmt(max_round),
        ]);
    }
    rep.check(
        all_ok,
        "no grid refinement beats the integral optimum; rounding is lossless",
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
