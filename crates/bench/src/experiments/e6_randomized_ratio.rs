//! E6 — Theorem 3: the randomized algorithm is 2-competitive in
//! expectation, because randomized rounding preserves the fractional cost
//! (Lemmas 18–20).
//!
//! Two measurements per workload:
//! 1. the fractional (HalfStep) schedule's ratio against OPT — the input
//!    guarantee the rounding inherits;
//! 2. the Monte-Carlo expected cost of the rounded schedule divided by the
//!    fractional cost — must be ~1.0 (the Section 4 identity
//!    `E[C(X)] = C(\bar X)`).

use crate::report::{fmt, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rsdc_core::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::randomized::round_schedule;
use rsdc_online::traits::run_frac;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::traces::standard_corpus;

/// Run the experiment.
pub fn run() -> Report {
    run_sized(1000)
}

/// Run with a chosen Monte-Carlo trial count.
pub fn run_sized(trials: usize) -> Report {
    let mut rep = Report::new(
        "E6",
        "randomized rounding preserves cost; randomized algorithm near 2-competitive",
        "Theorem 3 via Lemmas 18-20: E[C(X)] = C(fractional); with a 2-competitive fractional \
         schedule the rounded algorithm is 2-competitive",
        &["workload", "frac/OPT", "E[C]/frac", "E[C]/OPT"],
    );

    let mut worst_preservation_err: f64 = 0.0;
    let mut worst_expected_ratio: f64 = 0.0;

    for trace in standard_corpus(400, 77) {
        let model = CostModel::default();
        let m = fleet_size(&trace, 0.8);
        let inst = model.instance(m, &trace);

        // Stage 1: fractional schedule over the continuous extension.
        let mut frac_alg = HalfStep::new(m, model.beta, EvalMode::Interpolate);
        let fx = run_frac(&mut frac_alg, &inst);
        let frac_c = frac_cost(&inst, &fx, FracMode::Interpolate);
        let opt = rsdc_offline::dp::solve_cost_only(&inst);

        // Stage 2: Monte-Carlo rounding.
        let total: f64 = (0..trials)
            .into_par_iter()
            .map(|s| {
                let rng = StdRng::seed_from_u64(s as u64);
                let xs = round_schedule(rng, &fx);
                cost(&inst, &xs)
            })
            .sum();
        let expected = total / trials as f64;

        let frac_ratio = frac_c / opt;
        let preservation = expected / frac_c;
        let exp_ratio = expected / opt;
        worst_preservation_err = worst_preservation_err.max((preservation - 1.0).abs());
        worst_expected_ratio = worst_expected_ratio.max(exp_ratio);

        rep.row(vec![
            trace.label.clone(),
            fmt(frac_ratio),
            fmt(preservation),
            fmt(exp_ratio),
        ]);
    }

    rep.check(
        worst_preservation_err < 0.02,
        format!(
            "rounding preserves expected cost to within Monte-Carlo noise \
             (max |E[C]/frac - 1| = {})",
            fmt(worst_preservation_err)
        ),
    );
    rep.check(
        worst_expected_ratio <= 2.0 + 0.1,
        format!(
            "expected ratio stays at or below ~2 on the corpus (worst {})",
            fmt(worst_expected_ratio)
        ),
    );
    rep.note(
        "frac/OPT is the empirical competitiveness of the HalfStep fractional stage \
         (substitute for Bansal et al., see DESIGN.md substitution 2)",
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_passes() {
        let r = super::run_sized(200);
        assert!(r.pass, "{}", r.to_markdown());
    }
}
