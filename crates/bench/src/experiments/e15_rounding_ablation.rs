//! E15 — rounding ablation and concentration.
//!
//! Two studies of the Section 4.1 randomized rounding:
//!
//! 1. **Coupling ablation.** Replace the paper's transition-coupled rounding
//!    with naive independent per-slot rounding (same marginals). Operating
//!    cost is preserved either way (Lemma 19 only needs marginals), but the
//!    independent variant pays switching cost the fractional schedule never
//!    had — quantifying why Lemma 20's coupling is the heart of Theorem 3.
//! 2. **Concentration.** The guarantee is in expectation; single runs
//!    fluctuate. We report the quantiles of the realized cost across
//!    seeds — the spread is modest on realistic workloads.

use crate::report::{fmt, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rsdc_core::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::randomized::{round_schedule, round_schedule_independent};
use rsdc_online::traits::run_frac;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::stats::quantile;
use rsdc_workloads::traces::standard_corpus;

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E15",
        "rounding ablation (coupled vs independent) and concentration",
        "Lemma 20 needs the coupled transition rule: independent rounding preserves marginals \
         but inflates expected switching cost",
        &[
            "workload",
            "frac cost",
            "E[C] coupled",
            "E[C] independent",
            "p5..p95 coupled",
        ],
    );

    let trials = 600usize;
    let model = CostModel::default();
    let mut inflation_seen = false;

    for trace in standard_corpus(300, 53) {
        let m = fleet_size(&trace, 0.8);
        let inst = model.instance(m, &trace);
        let mut frac_alg = HalfStep::new(m, model.beta, EvalMode::Interpolate);
        let fx = run_frac(&mut frac_alg, &inst);
        let fc = frac_cost(&inst, &fx, FracMode::Interpolate);

        let coupled: Vec<f64> = (0..trials)
            .into_par_iter()
            .map(|s| {
                let xs = round_schedule(StdRng::seed_from_u64(s as u64), &fx);
                cost(&inst, &xs)
            })
            .collect();
        let independent: Vec<f64> = (0..trials)
            .into_par_iter()
            .map(|s| {
                let xs = round_schedule_independent(StdRng::seed_from_u64(s as u64), &fx);
                cost(&inst, &xs)
            })
            .collect();

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ec, ei) = (mean(&coupled), mean(&independent));
        let (p5, p95) = (quantile(&coupled, 0.05), quantile(&coupled, 0.95));
        inflation_seen |= ei > ec * 1.02;
        rep.row(vec![
            trace.label.clone(),
            fmt(fc),
            fmt(ec),
            fmt(ei),
            format!("{}..{}", fmt(p5), fmt(p95)),
        ]);

        rep.check(
            (ec - fc).abs() < 0.03 * (1.0 + fc),
            format!("{}: coupled E[C] matches fractional cost", trace.label),
        );
        rep.check(
            ei >= ec - 0.02 * (1.0 + ec),
            format!("{}: independent rounding never cheaper", trace.label),
        );
    }

    rep.check(
        inflation_seen,
        "independent rounding measurably inflates cost on at least one workload",
    );

    // The canonical worst case for independent rounding: a long constant
    // fractional plateau at one half.
    let plateau = FracSchedule(vec![0.5; 400]);
    let inst = Instance::new(1, 2.0, vec![Cost::Zero; 400]).expect("params");
    let mean_cost = |f: &dyn Fn(StdRng, &FracSchedule) -> Schedule| -> f64 {
        (0..trials)
            .map(|s| cost(&inst, &f(StdRng::seed_from_u64(s as u64), &plateau)))
            .sum::<f64>()
            / trials as f64
    };
    let ec = mean_cost(&|r, x| round_schedule(r, x));
    let ei = mean_cost(&|r, x| round_schedule_independent(r, x));
    rep.row(vec![
        "constant 0.5 plateau".into(),
        fmt(1.0),
        fmt(ec),
        fmt(ei),
        "-".into(),
    ]);
    rep.check(
        ei > 20.0 * ec,
        format!(
            "plateau: independent rounding thrashes ({} vs {})",
            fmt(ei),
            fmt(ec)
        ),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e15_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
