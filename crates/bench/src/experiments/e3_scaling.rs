//! E3 — the O(T log m) runtime claim (Section 2.2).
//!
//! Wall-clock series: solve time versus `m` at fixed `T` for the full DP
//! (expected ~linear in `m`) versus the binary-search algorithm (expected
//! ~logarithmic in `m`), plus a `T` sweep at fixed `m` (both linear).
//! Shape checks assert the growth *ratios*, not absolute times.

use crate::report::{fmt, Report};
use rsdc_core::prelude::*;
use rsdc_offline::{binsearch, dp};
use std::time::Instant;

fn workload(m: u32, t_len: usize) -> Instance {
    // Smooth sinusoidal targets; Abs costs are O(1) to evaluate so timing
    // reflects the solvers, not cost-function evaluation.
    let costs = (0..t_len)
        .map(|t| {
            let target = (m as f64 / 2.0) * (1.0 + ((t as f64) * 0.05).sin());
            Cost::abs(1.0, target)
        })
        .collect();
    Instance::new(m, 2.0, costs).expect("valid instance")
}

fn time_once<F: FnMut() -> f64>(mut f: F) -> (f64, f64) {
    // Returns (seconds, result checksum) over the best of 3 runs.
    let mut best = f64::INFINITY;
    let mut out = 0.0;
    for _ in 0..3 {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Run the experiment. `quick` shrinks sizes for CI-style runs.
pub fn run_sized(quick: bool) -> Report {
    let mut rep = Report::new(
        "E3",
        "offline solver scaling",
        "Section 2.2: binary-search solves in O(T log m) versus O(T m) for the DP",
        &["T", "m", "DP (ms)", "binsearch (ms)", "speedup"],
    );

    let t_fixed = if quick { 512 } else { 2048 };
    let ms: Vec<u32> = if quick {
        vec![64, 256, 1024, 4096]
    } else {
        vec![64, 256, 1024, 4096, 16384]
    };

    let mut dp_times = Vec::new();
    let mut bs_times = Vec::new();
    for &m in &ms {
        let inst = workload(m, t_fixed);
        let (t_dp, c_dp) = time_once(|| dp::solve_cost_only(&inst));
        let (t_bs, c_bs) = time_once(|| binsearch::solve(&inst).cost);
        assert!(
            (c_dp - c_bs).abs() < 1e-6 * (1.0 + c_dp.abs()),
            "solvers disagree at m={m}"
        );
        dp_times.push(t_dp);
        bs_times.push(t_bs);
        rep.row(vec![
            t_fixed.to_string(),
            m.to_string(),
            fmt(t_dp * 1e3),
            fmt(t_bs * 1e3),
            fmt(t_dp / t_bs),
        ]);
    }

    // Shape checks over the widest span: DP should grow roughly with m
    // (factor >= a decent fraction of the m ratio); binary search only with
    // log m (grows far slower than m).
    let span = ms[ms.len() - 1] as f64 / ms[0] as f64;
    let dp_growth = dp_times[dp_times.len() - 1] / dp_times[0].max(1e-9);
    let bs_growth = bs_times[bs_times.len() - 1] / bs_times[0].max(1e-9);
    rep.note(format!(
        "m span x{span:.0}: DP grew x{dp_growth:.1}, binsearch grew x{bs_growth:.1}"
    ));
    rep.check(
        dp_growth > span / 8.0,
        "DP time grows on the order of m (within noise)",
    );
    rep.check(
        bs_growth < span / 8.0,
        "binary-search time grows far slower than m",
    );
    rep.check(
        bs_times[bs_times.len() - 1] < dp_times[dp_times.len() - 1],
        "binary search faster than DP at the largest m",
    );

    // T sweep at fixed m: both should be ~linear in T.
    let m_fixed = if quick { 512 } else { 1024 };
    let ts: Vec<usize> = if quick {
        vec![256, 1024, 4096]
    } else {
        vec![512, 2048, 8192]
    };
    let mut bs_t = Vec::new();
    for &t_len in &ts {
        let inst = workload(m_fixed, t_len);
        let (t_bs, _) = time_once(|| binsearch::solve(&inst).cost);
        bs_t.push(t_bs);
        rep.row(vec![
            t_len.to_string(),
            m_fixed.to_string(),
            "-".into(),
            fmt(t_bs * 1e3),
            "-".into(),
        ]);
    }
    let t_span = ts[ts.len() - 1] as f64 / ts[0] as f64;
    let t_growth = bs_t[bs_t.len() - 1] / bs_t[0].max(1e-9);
    rep.check(
        t_growth < t_span * 4.0,
        format!("binsearch ~linear in T (span x{t_span:.0}, grew x{t_growth:.1})"),
    );
    rep
}

/// Run with full sizes.
pub fn run() -> Report {
    run_sized(false)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_quick_passes() {
        let r = super::run_sized(true);
        assert!(r.pass, "{}", r.to_markdown());
    }
}
