//! E9 — Theorems 5, 7, 9: the lower bounds survive in the restricted model.
//!
//! Verifies the cost-preserving reductions G -> L and re-runs the
//! deterministic adversary through the reduction: LCP's ratio on the mapped
//! instance stays close to 3.

use crate::report::{fmt, Report};
use rsdc_adversary::discrete::DiscreteAdversary;
use rsdc_adversary::restricted::{to_restricted_continuous, to_restricted_discrete};
use rsdc_core::prelude::*;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::{competitive_ratio, run as run_online};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E9",
        "restricted-model reductions",
        "Theorems 5/7/9: the phi-function adversaries map to eq.-2 instances with identical \
         per-slot costs, so every lower bound holds in the restricted model",
        &["check", "eps", "value G", "value L", "ratio L"],
    );

    // Cost identity of the discrete reduction over a dense probe.
    let eps = 0.25;
    let probe = Instance::new(
        1,
        2.0,
        vec![Cost::phi1(eps), Cost::phi0(eps), Cost::phi1(eps)],
    )
    .expect("params");
    let mapped = to_restricted_discrete(&probe).to_general();
    let mut max_gap: f64 = 0.0;
    for t in 1..=probe.horizon() {
        for xg in 0..=1u32 {
            let a = probe.cost_fn(t).eval(xg);
            let b = mapped.cost_fn(t).eval(xg + 1);
            max_gap = max_gap.max((a - b).abs());
        }
    }
    rep.row(vec![
        "discrete op-cost identity".into(),
        fmt(eps),
        "-".into(),
        fmt(max_gap),
        "-".into(),
    ]);
    rep.check(max_gap < 1e-12, "x^L f(l/x^L) == phi(x^G) exactly");

    // Continuous reduction identity at sampled fractional states.
    let k = 128.0;
    let mapped_c = to_restricted_continuous(&probe, k).to_general();
    let mut max_gap_c: f64 = 0.0;
    for t in 1..=probe.horizon() {
        for i in 1..=16 {
            let x = i as f64 / 16.0;
            let a = probe.cost_fn(t).eval_analytic(x);
            let b = mapped_c.cost_fn(t).eval_analytic(x);
            max_gap_c = max_gap_c.max((a - b).abs());
        }
    }
    rep.row(vec![
        "continuous op-cost identity".into(),
        fmt(eps),
        "-".into(),
        fmt(max_gap_c),
        "-".into(),
    ]);
    rep.check(max_gap_c < 1e-9, "x f(l/x) == phi(x) for x >= lambda");

    // Adversary carry-over: ratio on the mapped instance. Long horizons so
    // the reduction's O(1) entry power-up washes out of the ratio.
    for eps in [0.02, 0.01] {
        let adv = DiscreteAdversary::with_canonical_horizon(eps);
        let mut lcp_g = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp_g);
        let (_, _, ratio_g) = duel.ratio();

        let mapped = to_restricted_discrete(&duel.instance).to_general();
        let mut lcp_l = Lcp::new(2, 2.0);
        let xs = run_online(&mut lcp_l, &mapped);
        let (_, _, ratio_l) = competitive_ratio(&mapped, &xs);
        rep.row(vec![
            "adversary carry-over".into(),
            fmt(eps),
            fmt(ratio_g),
            fmt(ratio_l),
            fmt(ratio_l),
        ]);
        rep.check(
            ratio_l <= 3.0 + 1e-9 && ratio_l > ratio_g - 0.35,
            format!(
                "eps={eps}: restricted ratio {} tracks general {}",
                fmt(ratio_l),
                fmt(ratio_g)
            ),
        );
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
