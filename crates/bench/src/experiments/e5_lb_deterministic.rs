//! E5 — Theorem 4: the deterministic lower bound of 3.
//!
//! Sweeps `eps` (with the canonical horizon `T = 1/eps^2`) and reports the
//! adversary's achieved ratio against LCP, which must converge to 3 from
//! below while respecting the finite-parameter floor.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_adversary::discrete::DiscreteAdversary;
use rsdc_online::lcp::Lcp;

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E5",
        "deterministic lower bound (discrete)",
        "Theorem 4: no deterministic online algorithm beats 3; the adversary forces LCP toward 3 \
         as eps -> 0",
        &["eps", "T", "LCP cost", "OPT cost", "ratio", "floor"],
    );

    let epss = [0.1, 0.05, 0.02, 0.01, 0.005];
    let results: Vec<_> = epss
        .par_iter()
        .map(|&eps| {
            let adv = DiscreteAdversary::with_canonical_horizon(eps);
            let mut lcp = Lcp::new(1, 2.0);
            let duel = adv.run(&mut lcp);
            let (alg, opt, ratio) = duel.ratio();
            (
                eps,
                adv.t_len,
                alg,
                opt,
                ratio,
                adv.theoretical_ratio_floor(),
            )
        })
        .collect();

    let mut final_ratio = 0.0;
    let mut all_ok = true;
    for (eps, t, alg, opt, ratio, floor) in results {
        all_ok &= ratio <= 3.0 + 1e-9 && ratio >= floor - 1e-9;
        final_ratio = ratio;
        rep.row(vec![
            fmt(eps),
            t.to_string(),
            fmt(alg),
            fmt(opt),
            fmt(ratio),
            fmt(floor),
        ]);
    }

    rep.check(all_ok, "every ratio in [floor, 3]");
    rep.check(
        final_ratio > 2.93,
        format!(
            "smallest eps pushes the ratio to {} (-> 3)",
            fmt(final_ratio)
        ),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
