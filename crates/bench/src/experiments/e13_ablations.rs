//! E13 — ablations of the binary-search algorithm's design choices.
//!
//! Not a paper artifact, but evidence *for* the paper's choices:
//!
//! 1. **Neighbourhood radius.** Lemma 5 guarantees an optimal schedule of
//!    the next iteration within `2^k`, i.e. radius 2 in units of the new
//!    stride. Radius 1 is faster but must lose optimality on some
//!    instances; radius 3 must add nothing.
//! 2. **Padding epsilon.** Any positive `eps` keeps the extension strictly
//!    increasing; the optimum must be insensitive across 12 orders of
//!    magnitude.
//! 3. **Grid-LCP resolution.** The fractional LCP approaches a stable
//!    continuous-extension cost as the grid refines.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_core::prelude::*;
use rsdc_offline::{binsearch, dp};
use rsdc_online::flcp::GridLcp;
use rsdc_online::traits::run_frac;
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E13",
        "ablations: refinement radius, padding eps, grid resolution",
        "Design-choice evidence: radius 2 is necessary and sufficient (Lemma 5); padding eps is \
         irrelevant; fractional LCP converges with grid refinement",
        &[
            "ablation",
            "setting",
            "instances",
            "suboptimal",
            "max rel. gap",
        ],
    );

    let cfg = RandomInstanceCfg {
        m: 32,
        t_len: 20,
        beta_range: (0.2, 8.0),
        slope_scale: 3.0,
    };
    let n = 300usize;

    // 1. Radius sweep.
    for radius in [1u32, 2, 3] {
        let gaps: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|seed| {
                let inst = random_instance(&cfg, 31_000 + seed as u64);
                let exact = dp::solve_cost_only(&inst);
                let heur = binsearch::solve_with_radius(&inst, 1e-6, radius);
                ((heur.cost - exact) / (1.0 + exact.abs())).max(0.0)
            })
            .collect();
        let subopt = gaps.iter().filter(|&&g| g > 1e-9).count();
        let max_gap = gaps.iter().copied().fold(0.0, f64::max);
        rep.row(vec![
            "radius".into(),
            radius.to_string(),
            n.to_string(),
            subopt.to_string(),
            fmt(max_gap),
        ]);
        if radius == 1 {
            // Lemma 5 only guarantees the optimum within 2*2^{k-1}, i.e.
            // radius 2; radius 1 has no proof. Empirically it has never
            // failed on random convex instances — an observation worth
            // recording, not a guarantee worth relying on.
            rep.note(format!(
                "radius 1 (unproven heuristic): {subopt}/{n} suboptimal, max gap {}",
                fmt(max_gap)
            ));
        } else {
            rep.check(
                subopt == 0,
                format!("radius {radius} is exact on all {n} instances (Lemma 5)"),
            );
        }
    }

    // 2. Padding epsilon sweep (non-power-of-two m so padding is active).
    let cfg_pad = RandomInstanceCfg { m: 21, ..cfg };
    let mut eps_ok = true;
    for eps in [1e-12, 1e-6, 1e-2, 1.0] {
        let max_gap = (0..n)
            .into_par_iter()
            .map(|seed| {
                let inst = random_instance(&cfg_pad, 32_000 + seed as u64);
                let exact = dp::solve_cost_only(&inst);
                let sol = binsearch::solve_with_eps(&inst, eps);
                ((sol.cost - exact).abs()) / (1.0 + exact.abs())
            })
            .reduce(|| 0.0, f64::max);
        eps_ok &= max_gap < 1e-9;
        rep.row(vec![
            "padding eps".into(),
            format!("{eps:e}"),
            n.to_string(),
            "-".into(),
            fmt(max_gap),
        ]);
    }
    rep.check(eps_ok, "optimum invariant across 12 orders of padding eps");

    // 3. Grid-LCP resolution: continuous-extension cost stabilises.
    let inst = {
        let costs: Vec<Cost> = (0..60)
            .map(|t| Cost::abs(1.0, 3.0 + 2.8 * ((t as f64) * 0.5).sin()))
            .collect();
        Instance::new(6, 2.0, costs).expect("params")
    };
    let mut last = f64::INFINITY;
    let mut series = Vec::new();
    for k in [1u32, 2, 4, 8, 16] {
        let mut g = GridLcp::new(6, 2.0, k);
        let frac = run_frac(&mut g, &inst);
        let c = frac_cost(&inst, &frac, FracMode::Interpolate);
        series.push(c);
        rep.row(vec![
            "grid LCP k".into(),
            k.to_string(),
            "1".into(),
            "-".into(),
            fmt(c),
        ]);
        last = c;
    }
    let spread = (series.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - series.iter().copied().fold(f64::INFINITY, f64::min))
        / last;
    rep.check(
        spread < 0.25,
        format!(
            "grid-LCP cost stable under refinement (spread {})",
            fmt(spread)
        ),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
