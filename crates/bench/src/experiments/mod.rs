//! The experiment suite: one module per row of the DESIGN.md experiment
//! index (E1–E12) plus the ablation/calibration suite (E13–E16). Each module exposes `run() -> Report`.

pub mod e10_prediction;
pub mod e11_casestudy;
pub mod e12_rounding_lemma;
pub mod e13_ablations;
pub mod e14_baselines;
pub mod e15_rounding_ablation;
pub mod e16_hetero;
pub mod e1_graph;
pub mod e2_offline_equiv;
pub mod e3_scaling;
pub mod e4_lcp_ratio;
pub mod e5_lb_deterministic;
pub mod e6_randomized_ratio;
pub mod e7_lb_randomized;
pub mod e8_lb_continuous;
pub mod e9_restricted;

use crate::report::Report;

/// All experiment ids in run order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];

/// Run one experiment by id (`"e1"`..`"e12"`). `quick` shrinks the sizes of
/// the slow ones.
pub fn run_by_id(id: &str, quick: bool) -> Option<Report> {
    Some(match id {
        "e1" => e1_graph::run(),
        "e2" => e2_offline_equiv::run(),
        "e3" => e3_scaling::run_sized(quick),
        "e4" => e4_lcp_ratio::run(),
        "e5" => e5_lb_deterministic::run(),
        "e6" => {
            if quick {
                e6_randomized_ratio::run_sized(200)
            } else {
                e6_randomized_ratio::run()
            }
        }
        "e7" => e7_lb_randomized::run(),
        "e8" => e8_lb_continuous::run(),
        "e9" => e9_restricted::run(),
        "e10" => e10_prediction::run(),
        "e11" => e11_casestudy::run(),
        "e12" => e12_rounding_lemma::run(),
        "e13" => e13_ablations::run(),
        "e14" => e14_baselines::run(),
        "e15" => e15_rounding_ablation::run(),
        "e16" => e16_hetero::run(),
        _ => return None,
    })
}
