//! E11 — the Lin et al. case study: how much does right-sizing save?
//!
//! The motivating evaluation this paper inherits from Lin et al. [22, 24]:
//! on diurnal data-center traces, dynamic right-sizing (offline optimal,
//! LCP, randomized) saves a substantial fraction of cost versus the best
//! static provisioning, with the savings shrinking as the switching cost
//! `beta` grows and as the peak-to-mean ratio approaches 1.
//!
//! The proprietary MSR/Hotmail traces are substituted by the synthetic
//! corpus (DESIGN.md substitution 1); the sweep over peak-to-mean ratios
//! makes the qualitative claim testable over the whole regime.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::lcp::Lcp;
use rsdc_online::randomized::RandomizedOnline;
use rsdc_online::traits::run as run_online;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::traces::{Diurnal, Trace};

struct Row {
    label: String,
    beta: f64,
    save_opt: f64,
    save_lcp: f64,
    save_rand: f64,
}

/// The case-study cost model: energy-dominated (idle power is the waste
/// right-sizing recovers), soft delay, firm overload penalty. Chosen so the
/// savings *range* matches the Lin et al. narrative; the shape checks below
/// are what the experiment asserts.
fn case_model(beta: f64) -> CostModel {
    CostModel {
        beta,
        overload: 40.0,
        server: rsdc_core::ServerParams {
            e_idle: 1.0,
            e_peak: 2.0,
            delay_weight: 0.2,
            delay_eps: 0.5,
        },
    }
}

fn savings(model: &CostModel, trace: &Trace) -> Row {
    let m = fleet_size(trace, 0.6);
    let inst = model.instance(m, trace);
    let (_, static_cost) = model.best_static_cost(m, trace);
    let opt = rsdc_offline::dp::solve_cost_only(&inst);

    let mut lcp = Lcp::new(m, model.beta);
    let lcp_cost = rsdc_core::schedule::cost(&inst, &run_online(&mut lcp, &inst));

    let mut rnd =
        RandomizedOnline::new(HalfStep::new(m, model.beta, EvalMode::Interpolate), m, 2024);
    let rnd_cost = rsdc_core::schedule::cost(&inst, &run_online(&mut rnd, &inst));

    let pct = |c: f64| 100.0 * (1.0 - c / static_cost);
    Row {
        label: trace.label.clone(),
        beta: model.beta,
        save_opt: pct(opt),
        save_lcp: pct(lcp_cost),
        save_rand: pct(rnd_cost),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E11",
        "right-sizing savings vs static provisioning (Lin et al. case study)",
        "Right-sizing saves significantly on diurnal load; savings shrink with larger beta and \
         with peak-to-mean -> 1",
        &[
            "trace",
            "PMR",
            "beta",
            "save OPT %",
            "save LCP %",
            "save RND %",
        ],
    );

    // Beta sweep on a strongly diurnal trace.
    let diurnal = Diurnal {
        period: 48,
        base: 0.5,
        peak: 18.0,
        noise: 0.08,
    }
    .generate(480, 5);

    let betas = [1.0, 6.0, 24.0, 96.0];
    let beta_rows: Vec<Row> = betas
        .par_iter()
        .map(|&beta| savings(&case_model(beta), &diurnal))
        .collect();
    for r in &beta_rows {
        rep.row(vec![
            r.label.clone(),
            fmt(diurnal.peak_to_mean()),
            fmt(r.beta),
            fmt(r.save_opt),
            fmt(r.save_lcp),
            fmt(r.save_rand),
        ]);
    }

    // Peak-to-mean sweep at fixed beta: flatten the diurnal pattern.
    let pmr_rows: Vec<(f64, Row)> = [(0.5, 18.0), (6.0, 18.0), (12.0, 18.0), (17.0, 18.0)]
        .par_iter()
        .map(|&(base, peak)| {
            let tr = Diurnal {
                period: 48,
                base,
                peak,
                noise: 0.05,
            }
            .generate(480, 9);
            (tr.peak_to_mean(), savings(&case_model(6.0), &tr))
        })
        .collect();
    for (pmr, r) in &pmr_rows {
        rep.row(vec![
            r.label.clone(),
            fmt(*pmr),
            fmt(r.beta),
            fmt(r.save_opt),
            fmt(r.save_lcp),
            fmt(r.save_rand),
        ]);
    }

    // Shape checks.
    rep.check(
        beta_rows[0].save_opt > 20.0,
        format!(
            "substantial savings at low beta ({}%)",
            fmt(beta_rows[0].save_opt)
        ),
    );
    rep.check(
        beta_rows
            .windows(2)
            .all(|w| w[1].save_opt <= w[0].save_opt + 1.0),
        "savings shrink (weakly) as beta grows",
    );
    let pmr_saves: Vec<f64> = pmr_rows.iter().map(|(_, r)| r.save_opt).collect();
    rep.check(
        pmr_saves.last().unwrap() + 1.0 < *pmr_saves.first().unwrap(),
        format!(
            "savings shrink as peak-to-mean -> 1 ({} -> {})",
            fmt(pmr_saves[0]),
            fmt(*pmr_saves.last().unwrap())
        ),
    );
    rep.check(
        beta_rows.iter().all(|r| r.save_lcp <= r.save_opt + 1e-9),
        "online never beats offline",
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
