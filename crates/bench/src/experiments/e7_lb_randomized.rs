//! E7 — Theorem 8: the randomized lower bound of 2.
//!
//! Sweeps `eps` and drives the marginal schedule of the randomized
//! algorithm (= its fractional stage, by Lemma 18) with the continuous
//! adversary; the marginal-cost-to-OPT ratio must approach 2.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_adversary::randomized::RandomizedAdversary;
use rsdc_online::fractional::{EvalMode, HalfStep};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E7",
        "randomized lower bound (discrete)",
        "Theorem 8: no randomized algorithm beats 2 against an oblivious adversary; \
         the marginal-schedule construction forces the ratio toward 2",
        &["eps", "T", "C(marginals)", "OPT", "ratio"],
    );

    let sweeps = [
        (0.25, 2000usize),
        (0.125, 4000),
        (0.0625, 8000),
        (0.03125, 16000),
    ];
    let results: Vec<_> = sweeps
        .par_iter()
        .map(|&(eps, t_len)| {
            let adv = RandomizedAdversary { eps, t_len };
            let mut frac = HalfStep::new(1, 2.0, EvalMode::Analytic);
            let duel = adv.run(&mut frac);
            let c = duel.algorithm_cost();
            let opt = duel.grid_opt(128);
            (eps, t_len, c, opt, c / opt)
        })
        .collect();

    let mut last_ratio = 0.0;
    let mut all_lb = true;
    for (eps, t, c, opt, ratio) in results {
        all_lb &= ratio >= 2.0 - eps;
        last_ratio = ratio;
        rep.row(vec![fmt(eps), t.to_string(), fmt(c), fmt(opt), fmt(ratio)]);
    }
    rep.check(all_lb, "every ratio >= 2 - eps (Lemma 21/22 accounting)");
    rep.check(
        last_ratio > 1.95,
        format!("smallest eps reaches {} (-> 2)", fmt(last_ratio)),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
