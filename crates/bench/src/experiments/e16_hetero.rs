//! E16 — the heterogeneous extension (future work the paper points to).
//!
//! Two server types (cheap/slow and dear/fast) under aggregate-capacity
//! costs: exact lattice DP as ground truth, coordinate-wise LCP and the
//! greedy configuration baseline as online policies. Also verifies the
//! decomposition oracle: on separable costs the heterogeneous optimum
//! equals the sum of per-type homogeneous optima.

use crate::report::{fmt, Report};
use rsdc_core::prelude::*;
use rsdc_hetero::{CoordinateLcp, GreedyConfig, HCost, HInstance, ServerType};
use rsdc_workloads::traces::Diurnal;

fn types() -> Vec<ServerType> {
    vec![
        ServerType {
            count: 4,
            beta: 2.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 4,
            beta: 6.0,
            energy: 1.6,
            capacity: 2.2,
        },
    ]
}

fn aggregate_instance(loads: &[f64]) -> HInstance {
    HInstance {
        types: types(),
        costs: loads
            .iter()
            .map(|&lambda| HCost::Aggregate {
                lambda,
                delay_weight: 1.0,
                delay_eps: 0.3,
                overload: 30.0,
            })
            .collect(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E16",
        "heterogeneous extension: exact DP vs online heuristics",
        "Section 1 related work: the heterogeneous problem is convex function chasing; the \
         homogeneous machinery extends per-coordinate without a guarantee but with good \
         empirical behaviour",
        &[
            "workload",
            "OPT",
            "CoordLCP",
            "Greedy",
            "LCP/OPT",
            "Greedy/OPT",
        ],
    );

    let mut all_ok = true;
    for (label, loads) in [
        (
            "diurnal",
            Diurnal {
                period: 24,
                base: 1.0,
                peak: 9.0,
                noise: 0.05,
            }
            .generate(96, 4)
            .loads,
        ),
        (
            "oscillating",
            (0..96)
                .map(|t| if t % 2 == 0 { 8.0 } else { 0.5 })
                .collect::<Vec<f64>>(),
        ),
        (
            "ramp",
            (0..96).map(|t| t as f64 / 12.0).collect::<Vec<f64>>(),
        ),
    ] {
        let inst = aggregate_instance(&loads);
        let opt = rsdc_hetero::solve(&inst);

        let mut clcp = CoordinateLcp::new(&inst);
        let xs_lcp: Vec<_> = (1..=inst.horizon()).map(|t| clcp.step(&inst, t)).collect();
        let c_lcp = inst.cost(&xs_lcp);

        let mut greedy = GreedyConfig::new(inst.dims());
        let xs_g: Vec<_> = (1..=inst.horizon())
            .map(|t| greedy.step(&inst, t))
            .collect();
        let c_g = inst.cost(&xs_g);

        let r_lcp = c_lcp / opt.cost;
        let r_g = c_g / opt.cost;
        all_ok &= (1.0 - 1e-9..4.0).contains(&r_lcp);
        rep.row(vec![
            label.into(),
            fmt(opt.cost),
            fmt(c_lcp),
            fmt(c_g),
            fmt(r_lcp),
            fmt(r_g),
        ]);
        if label == "oscillating" {
            rep.check(
                r_lcp < r_g,
                format!(
                    "laziness still pays in higher dimension ({} vs greedy {})",
                    fmt(r_lcp),
                    fmt(r_g)
                ),
            );
        }
    }
    rep.check(all_ok, "coordinate LCP stays within a small factor of OPT");

    // Decomposition oracle on separable costs.
    let sep = HInstance {
        types: types(),
        costs: (0..10)
            .map(|t| HCost::SeparableAbs {
                targets: vec![(t % 5) as f64, (t % 3) as f64],
                slopes: vec![1.5, 2.0],
            })
            .collect(),
    };
    let h = rsdc_hetero::solve(&sep);
    let mut sum_1d = 0.0;
    for d in 0..2 {
        let ty = types()[d];
        let costs: Vec<Cost> = (0..10)
            .map(|t| Cost::abs([1.5, 2.0][d], [(t % 5) as f64, (t % 3) as f64][d]))
            .collect();
        let one = Instance::new(ty.count, ty.beta, costs).expect("params");
        sum_1d += rsdc_offline::dp::solve_cost_only(&one);
    }
    rep.row(vec![
        "separable decomposition".into(),
        fmt(h.cost),
        fmt(sum_1d),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    rep.check(
        (h.cost - sum_1d).abs() < 1e-9 * (1.0 + sum_1d),
        "lattice DP equals the sum of per-type homogeneous optima on separable costs",
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
