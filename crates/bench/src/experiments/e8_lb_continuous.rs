//! E8 — Theorem 6 / Lemmas 21–23: the continuous lower bound of 2.
//!
//! Three series:
//! 1. algorithm B against its own adversary: ratio -> 2 - eps/2;
//! 2. Lemma 23: every other tested algorithm pays at least C(B);
//! 3. the Lemma 21 case-1 workload (absorption at 0): a deterministic
//!    sequence driving B back to 0 realises the 2 - eps/2 accounting
//!    exactly.

use crate::report::{fmt, Report};
use rsdc_adversary::continuous::{AlgorithmB, ContinuousAdversary};
use rsdc_core::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep, MemorylessBalance, Obd};
use rsdc_online::traits::FractionalAlgorithm;

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E8",
        "continuous lower bound via algorithm B",
        "Theorem 6: no deterministic online algorithm for the continuous setting beats 2 \
         (C(A) >= C(B) >= (2 - eps/2) OPT)",
        &["series", "eps", "C(alg)", "C(B)", "OPT", "C(B)/OPT"],
    );

    let mut all_ok = true;
    let mut best_ratio = 0.0f64;

    // Series 1+2: the interactive adversary against several algorithms.
    // T scales as 1/eps^2 so the Lemma 21 finite-horizon slack term
    // O(1/(T eps)) vanishes along the sweep.
    for eps in [0.25, 0.125, 0.0625, 0.03125] {
        let t_len = (128.0 / (eps * eps)) as usize;
        let algorithms: Vec<Box<dyn FractionalAlgorithm>> = vec![
            Box::new(HalfStep::new(1, 2.0, EvalMode::Analytic)),
            Box::new(MemorylessBalance::new(1, 2.0, EvalMode::Analytic)),
            Box::new(Obd::new(1, 2.0, 2.0, EvalMode::Analytic)),
        ];
        for mut alg in algorithms {
            let adv = ContinuousAdversary { eps, t_len };
            let duel = adv.run(alg.as_mut());
            let c_a = duel.algorithm_cost();
            let c_b = duel.b_cost();
            let opt = duel.grid_opt(128);
            let ratio_b = c_b / opt;
            all_ok &= c_a >= c_b - 1e-6; // Lemma 23
            all_ok &= ratio_b >= 2.0 - eps; // Lemma 21 accounting
            best_ratio = best_ratio.max(ratio_b);
            rep.row(vec![
                alg.name(),
                fmt(eps),
                fmt(c_a),
                fmt(c_b),
                fmt(opt),
                fmt(ratio_b),
            ]);
        }
    }

    // Series 3: Lemma 21 case 1 — a fixed alternating sequence absorbing B
    // at 0 (send phi_0 until B hits 0, repeatedly).
    let eps = 0.0625;
    let mut b = AlgorithmB::new(eps);
    let mut inst = Instance::empty(1, 2.0).expect("params");
    let mut xs = Vec::new();
    let half_period = (2.0 / eps) as usize / 2; // up 16, down 16
    for cycle in 0..40 {
        for _ in 0..half_period {
            let f = if cycle % 2 == 0 {
                Cost::phi1(eps)
            } else {
                Cost::phi0(eps)
            };
            inst.push(f.clone());
            xs.push(b.step(&f));
        }
    }
    let sched = FracSchedule(xs);
    let c_b = frac_symmetric_cost(&inst, &sched, FracMode::Analytic);
    let fine = {
        let costs: Vec<Cost> = inst
            .cost_fns()
            .iter()
            .map(|f| Cost::table((0..=64).map(|i| f.eval_analytic(i as f64 / 64.0)).collect()))
            .collect();
        Instance::new(64, 2.0 / 64.0, costs).expect("grid instance")
    };
    let opt = rsdc_offline::dp::solve_cost_only(&fine);
    let ratio = c_b / opt;
    rep.row(vec![
        "case-1 absorption workload".into(),
        fmt(eps),
        fmt(c_b),
        fmt(c_b),
        fmt(opt),
        fmt(ratio),
    ]);
    all_ok &= ratio >= 2.0 - eps;
    best_ratio = best_ratio.max(ratio);

    rep.check(all_ok, "C(A) >= C(B) and C(B)/OPT >= 2 - eps everywhere");
    rep.check(
        best_ratio > 1.95,
        format!("the bound is tight: best ratio {}", fmt(best_ratio)),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
