//! E4 — Theorem 2: LCP is 3-competitive on every workload.
//!
//! Runs discrete LCP over the synthetic trace corpus and a beta sweep,
//! reporting the worst observed cost ratio against the exact offline
//! optimum. Every ratio must be <= 3; typical workloads land far below.

use crate::report::{fmt, Report};
use rayon::prelude::*;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::{competitive_ratio, run as run_online};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::standard_corpus;
use rsdc_workloads::{fleet_size, random::*};

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E4",
        "LCP competitiveness across workloads",
        "Theorem 2: discrete Lazy Capacity Provisioning is 3-competitive",
        &["workload", "beta", "LCP cost", "OPT cost", "ratio"],
    );

    let mut worst: f64 = 0.0;

    // Trace-driven workloads under three switching-cost regimes.
    for beta in [1.0, 6.0, 24.0] {
        for trace in standard_corpus(600, 42) {
            let model = CostModel {
                beta,
                ..Default::default()
            };
            let m = fleet_size(&trace, 0.8);
            let inst = model.instance(m, &trace);
            let mut lcp = Lcp::new(m, beta);
            let xs = run_online(&mut lcp, &inst);
            let (alg, opt, ratio) = competitive_ratio(&inst, &xs);
            worst = worst.max(ratio);
            rep.row(vec![
                trace.label.clone(),
                fmt(beta),
                fmt(alg),
                fmt(opt),
                fmt(ratio),
            ]);
        }
    }

    // Random convex instances (harsher than trace-derived shapes).
    let cfg = RandomInstanceCfg {
        m: 10,
        t_len: 80,
        beta_range: (0.2, 20.0),
        slope_scale: 3.0,
    };
    let random_worst = (0..200u64)
        .into_par_iter()
        .map(|seed| {
            let inst = random_instance(&cfg, 7000 + seed);
            let mut lcp = Lcp::new(inst.m(), inst.beta());
            let xs = run_online(&mut lcp, &inst);
            competitive_ratio(&inst, &xs).2
        })
        .reduce(|| 0.0, f64::max);
    rep.row(vec![
        "200 random convex instances (worst)".into(),
        "0.2-20".into(),
        "-".into(),
        "-".into(),
        fmt(random_worst),
    ]);
    worst = worst.max(random_worst);

    rep.note(format!("worst observed ratio: {}", fmt(worst)));
    rep.check(worst <= 3.0 + 1e-9, "all ratios <= 3 (Theorem 2)");
    rep.check(
        worst > 1.05,
        "some workload actually stresses LCP (sanity of the harness)",
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
