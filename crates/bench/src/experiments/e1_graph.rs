//! E1 — Figure 1: the layered-graph construction.
//!
//! Builds the explicit graph for a small instance, verifies that its
//! shortest path equals the DP and binary-search optima, and emits the DOT
//! rendering (the machine-readable Figure 1).

use crate::report::{fmt, Report};
use rsdc_core::prelude::*;
use rsdc_offline::{binsearch, dp, graph::Graph};

/// The small instance rendered in the figure: T = 8, m = 4, a load ramp.
pub fn figure_instance() -> Instance {
    let costs = (0..8)
        .map(|t| Cost::quadratic(0.8, (t % 5) as f64, 0.1))
        .collect();
    Instance::new(4, 1.5, costs).expect("valid instance")
}

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E1",
        "layered-graph construction (Figure 1)",
        "Section 2.1: source-sink paths correspond to schedules; path length = schedule cost; \
         shortest path = optimal schedule",
        &["quantity", "value"],
    );

    let inst = figure_instance();
    let g = Graph::build(&inst);
    let sp = g.shortest_path();
    let exact = dp::solve(&inst);
    let fast = binsearch::solve(&inst);

    rep.row(vec!["vertices".into(), g.vertex_count().to_string()]);
    rep.row(vec!["edges".into(), g.edge_count().to_string()]);
    rep.row(vec!["shortest-path cost".into(), fmt(sp.cost)]);
    rep.row(vec!["DP cost".into(), fmt(exact.cost)]);
    rep.row(vec!["binary-search cost".into(), fmt(fast.cost)]);
    rep.row(vec![
        "optimal schedule".into(),
        format!("{:?}", sp.schedule.0),
    ]);

    rep.check(
        (sp.cost - exact.cost).abs() < 1e-9,
        "shortest path equals DP optimum",
    );
    rep.check(
        (sp.cost - fast.cost).abs() < 1e-9,
        "shortest path equals binary-search optimum",
    );
    let path_cost = cost(&inst, &sp.schedule);
    rep.check(
        (path_cost - sp.cost).abs() < 1e-9,
        "path length equals schedule cost",
    );

    let dot = g.to_dot();
    rep.note(format!(
        "DOT rendering: {} lines (render with `cargo run --example graph_viz`)",
        dot.lines().count()
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
