//! E14 — why laziness matters: naive baselines against LCP.
//!
//! Calibration for the paper's contribution: the greedy follow-the-
//! minimizer policy has *unbounded* competitive ratio on oscillating
//! workloads (its ratio grows like `beta / eps`), ad-hoc hysteresis helps
//! but is workload-sensitive, the textbook Work Function Algorithm is
//! solid, and LCP is both guaranteed (<= 3) and empirically best-in-class.

use crate::report::{fmt, Report};
use rsdc_core::prelude::*;
use rsdc_online::baselines::{FollowTheMinimizer, Hysteresis, WorkFunction};
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::{competitive_ratio, run as run_online, OnlineAlgorithm};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::traces::standard_corpus;

fn oscillating(eps: f64, t_len: usize) -> Instance {
    let costs = (0..t_len)
        .map(|t| {
            if t % 2 == 0 {
                Cost::phi1(eps)
            } else {
                Cost::phi0(eps)
            }
        })
        .collect();
    Instance::new(1, 2.0, costs).expect("params")
}

fn ratio_of<A: OnlineAlgorithm>(mut a: A, inst: &Instance) -> f64 {
    let xs = run_online(&mut a, inst);
    competitive_ratio(inst, &xs).2
}

/// Run the experiment.
pub fn run() -> Report {
    let mut rep = Report::new(
        "E14",
        "baseline comparison: greedy, hysteresis, WFA vs LCP",
        "LCP's laziness is essential: greedy minimizer-following has unbounded ratio; LCP is \
         uniformly <= 3 (Theorem 2)",
        &["workload", "Greedy", "Hysteresis", "WFA", "LCP"],
    );

    // Oscillation stress: greedy ratio should scale like 1/eps.
    let mut greedy_prev = 0.0;
    let mut greedy_grows = true;
    for eps in [0.1, 0.01, 0.001] {
        let inst = oscillating(eps, 2000);
        let g = ratio_of(FollowTheMinimizer::new(1), &inst);
        let h = ratio_of(Hysteresis::new(1, 1), &inst);
        let w = ratio_of(WorkFunction::new(1, 2.0), &inst);
        let l = ratio_of(Lcp::new(1, 2.0), &inst);
        greedy_grows &= g > greedy_prev;
        greedy_prev = g;
        rep.row(vec![
            format!("oscillating eps={eps}"),
            fmt(g),
            fmt(h),
            fmt(w),
            fmt(l),
        ]);
        rep.check(l <= 3.0 + 1e-9, format!("LCP <= 3 at eps={eps}"));
    }
    rep.check(
        greedy_grows && greedy_prev > 100.0,
        format!(
            "greedy ratio grows unboundedly (reached {})",
            fmt(greedy_prev)
        ),
    );

    // Realistic corpus: everyone behaves, LCP should be at or near the top.
    let model = CostModel::default();
    let mut lcp_worst: f64 = 0.0;
    for trace in standard_corpus(400, 31) {
        let m = fleet_size(&trace, 0.8);
        let inst = model.instance(m, &trace);
        let g = ratio_of(FollowTheMinimizer::new(m), &inst);
        let h = ratio_of(Hysteresis::new(m, 2), &inst);
        let w = ratio_of(WorkFunction::new(m, model.beta), &inst);
        let l = ratio_of(Lcp::new(m, model.beta), &inst);
        lcp_worst = lcp_worst.max(l);
        rep.row(vec![trace.label.clone(), fmt(g), fmt(h), fmt(w), fmt(l)]);
    }
    rep.check(
        lcp_worst <= 3.0 + 1e-9,
        format!("LCP bounded on the corpus (worst {})", fmt(lcp_worst)),
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_passes() {
        let r = super::run();
        assert!(r.pass, "{}", r.to_markdown());
    }
}
