//! The scenario regression fleet runner: executes the curated zoo from
//! `rsdc-scenarios` end to end, checks every report against its
//! per-scenario bounds, and writes the comparable trajectory that is
//! checked in as `BENCH_scenarios.json` at the repo root.
//!
//! Unlike `engine_bench` (wall-clock rates, machine-dependent), every
//! number here except the zeroed wall section is **deterministic** in
//! the scenario seeds: reports are embedded in their golden rendering
//! (`ScenarioReport::golden_json`), so the checked-in file is
//! byte-reproducible and diffs only when behavior changes.
//!
//! USAGE: scenario_bench [--quick] [--out FILE] [--validate FILE]
//!
//! `--quick` runs the 120-tick fleet (push CI); the default is the
//! 960-tick nightly horizon. `--validate` checks an existing file
//! against the schema — fleet complete, bounds satisfied, every metric
//! finite — and exits non-zero on mismatch. One `name: ratio=...`
//! summary line per scenario goes to stderr either way.

use rsdc_scenarios::zoo;

/// Schema tag validated by `--validate`; bump on shape changes.
const SCHEMA: &str = "rsdc-scenarios-bench/v1";

/// Every zoo scenario a valid document must carry, in fleet order.
const FLEET: [&str; 8] = [
    "diurnal-baseline",
    "bursty-autoscale",
    "skew-storm",
    "price-squarewave",
    "crash-recovery",
    "adversarial-dilation",
    "hetero-fleet",
    "cold-start-flood",
];

/// Schema check: fleet complete, every report well-formed, every bounds
/// check clean. Returns the list of violations (empty = valid).
pub fn validate(doc: &serde::Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc["schema"].as_str() != Some(SCHEMA) {
        errs.push(format!("schema != {SCHEMA:?}"));
    }
    let rows = match doc["results"]["scenarios"].as_array() {
        Some(rows) if !rows.is_empty() => rows,
        _ => {
            errs.push("results.scenarios: missing or empty".into());
            return errs;
        }
    };
    for name in FLEET {
        if !rows.iter().any(|r| r["name"].as_str() == Some(name)) {
            errs.push(format!("scenario {name:?} missing from fleet"));
        }
    }
    for row in rows {
        let name = row["name"].as_str().unwrap_or("<unnamed>");
        match row["violations"].as_array() {
            Some(v) if v.is_empty() => {}
            Some(v) => {
                for violation in v {
                    let text = violation.as_str().unwrap_or("<non-string violation>");
                    errs.push(format!("{name}: bound violated: {text}"));
                }
            }
            None => errs.push(format!("{name}: violations field missing")),
        }
        let report = &row["report"];
        for field in ["online_cost", "opt_cost"] {
            match report[field].as_f64() {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                _ => errs.push(format!("{name}: report.{field}: not a finite non-negative")),
            }
        }
        for field in ["ticks", "events_offered", "events_applied"] {
            match report[field].as_f64() {
                Some(v) if v > 0.0 => {}
                _ => errs.push(format!("{name}: report.{field}: not positive")),
            }
        }
        if report["events_lost"].as_f64() != Some(0.0) {
            errs.push(format!("{name}: report.events_lost: nonzero or missing"));
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(path) = opt("--validate") {
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc: serde::Value =
            serde_json::from_str(&data).unwrap_or_else(|e| panic!("parsing {path}: {e:?}"));
        let errs = validate(&doc);
        if errs.is_empty() {
            println!("{path}: valid {SCHEMA}");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let quick = flag("--quick");
    eprintln!(
        "scenario_bench: running the {}-scenario fleet{}",
        FLEET.len(),
        if quick { " (quick)" } else { "" }
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for scenario in zoo::zoo(quick) {
        let name = scenario.spec.name.clone();
        let report = match rsdc_scenarios::run(&scenario.spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scenario_bench: {name}: RUN FAILED: {e}");
                failed = true;
                continue;
            }
        };
        let violations = scenario.bounds.check(&report);
        let status = if violations.is_empty() { "ok" } else { "FAIL" };
        eprintln!("scenario_bench: [{status}] {}", report.summary_line());
        for v in &violations {
            eprintln!("scenario_bench:        bound violated: {v}");
            failed = true;
        }
        let golden: serde::Value =
            serde_json::from_str(&report.golden_json()).expect("golden report parses");
        rows.push(serde_json::json!({
            "name": name,
            "summary": scenario.spec.summary,
            "violations": violations,
            "report": golden,
        }));
    }

    let doc = serde_json::json!({
        "schema": SCHEMA,
        "quick": quick,
        "results": { "scenarios": serde::Value::Array(rows) },
    });
    let errs = validate(&doc);
    if failed || !errs.is_empty() {
        for e in &errs {
            eprintln!("scenario_bench: {e}");
        }
        std::process::exit(1);
    }
    let text = serde_json::to_string_pretty(&doc).expect("render") + "\n";
    match opt("--out") {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("scenario_bench: wrote {path}");
        }
        None => print!("{text}"),
    }
}
