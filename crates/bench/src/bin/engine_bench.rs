//! Engine throughput trajectory: a small wall-clock bench runner whose
//! output is checked in as `BENCH_engine.json` at the repo root, so the
//! engine's performance shape is recorded alongside the code that produced
//! it.
//!
//! Seven measurements, mirroring the Criterion `engine_throughput` and
//! `wire_codec` groups but cheap enough to re-run by hand (and, with
//! `--quick`, in CI):
//!
//! - `throughput`  — policy-steps/s at shard counts 1, 2, 4, 8
//! - `store_overhead` — `NullStore` vs `FileStore` journaling at 2 shards
//! - `hetero`      — frontier vs greedy configuration-lattice stepping
//! - `rebalance`   — full vs incremental migration, tenants moved per
//!   second on a 4↔8 shard swing
//! - `energy`      — metering overhead (power meter off vs on at 4
//!   shards) and autoscale decision rates with counted vs priced
//!   induced costs
//! - `wire_codec`  — ingest decode rate and bytes/event per wire framing
//!   (JSONL parse vs binary frame walk); the schema pins binary at ≥2x
//!   the JSONL step rate, the one relative claim stable across machines
//! - `serve_throughput` — end-to-end served steps/s through the TCP
//!   reactor on loopback, concurrent connections per framing (prices the
//!   full stack: reactor, framing, engine, socket I/O)
//!
//! The engine runs with the metrics registry **disabled** (the documented
//! hot-path configuration), so these numbers price the engine, not the
//! observability layer.
//!
//! USAGE: engine_bench [--quick] [--out FILE] [--validate FILE] [--shape FILE]
//!
//! `--validate` checks an existing file against the schema (sections
//! present, every rate positive, binary wire decode ≥2x JSONL) and exits
//! non-zero on mismatch — CI runs it over both a fresh `--quick` run and
//! the checked-in trajectory. Absolute numbers are machine-dependent;
//! only the schema and that one ratio are enforced.
//!
//! `--shape FILE` prints the file's deterministic projection — schema tag
//! plus section/row structure with every measured number elided — which
//! is byte-identical between a quick CI run and the checked-in full
//! recording, so the nightly job re-records and literally `diff`s the
//! shapes.

use rsdc_core::Cost;
use rsdc_engine::{
    Engine, EngineConfig, FleetSpec, HeteroAlgo, PolicySpec, PowerConfig, PowerSpec, PriceSchedule,
    TenantConfig, TopologyConfig, TopologyPolicy,
};
use rsdc_hetero::ServerType;
use rsdc_store::{Durability, FileStore, FileStoreConfig, NullStore};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag validated by `--validate`; bump on shape changes.
const SCHEMA: &str = "rsdc-engine-bench/v4";

const M: u32 = 128;
const BETA: f64 = 4.0;

struct Scale {
    quick: bool,
    tenants: usize,
    hetero_tenants: usize,
    rebalance_tenants: usize,
    slots: usize,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                quick,
                tenants: 200,
                hetero_tenants: 40,
                rebalance_tenants: 100,
                slots: 2,
            }
        } else {
            Scale {
                quick,
                tenants: 2_000,
                hetero_tenants: 300,
                rebalance_tenants: 1_000,
                slots: 8,
            }
        }
    }
}

/// The hot-path engine configuration: metrics off.
fn bench_cfg(shards: usize) -> EngineConfig {
    let mut cfg = EngineConfig::with_shards(shards);
    cfg.metrics = false;
    cfg
}

fn scalar_batch(tenants: usize, slot: usize) -> Vec<(String, Cost)> {
    (0..tenants)
        .map(|i| {
            let center = ((slot * 5 + i) % (M as usize + 1)) as f64;
            (format!("t{i}"), Cost::abs(1.0, center))
        })
        .collect()
}

fn admit_scalar(engine: &Engine, tenants: usize) {
    for i in 0..tenants {
        let policy = if i % 2 == 0 {
            PolicySpec::Lcp
        } else {
            PolicySpec::HalfStepRounded { seed: i as u64 }
        };
        engine
            .admit(TenantConfig::new(format!("t{i}"), M, BETA, policy))
            .expect("admit");
    }
}

/// Steps/s over `slots` batches of one event per tenant.
fn run_slots(engine: &Engine, tenants: usize, slots: usize) -> f64 {
    let batches: Vec<_> = (0..slots).map(|t| scalar_batch(tenants, t)).collect();
    let start = Instant::now();
    for batch in batches {
        engine.step_batch(batch).expect("step");
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (tenants * slots) as f64 / secs
}

fn measure_throughput(s: &Scale) -> Vec<serde::Value> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&shards| {
            let engine = Engine::new(bench_cfg(shards));
            admit_scalar(&engine, s.tenants);
            run_slots(&engine, s.tenants, s.slots); // warm-up pass
            let rate = run_slots(&engine, s.tenants, s.slots);
            engine.shutdown();
            serde_json::json!({"shards": shards, "steps_per_sec": rate})
        })
        .collect()
}

fn measure_store_overhead(s: &Scale) -> Vec<serde::Value> {
    let dir = std::env::temp_dir()
        .join("rsdc-engine-bench")
        .join(format!("wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = ["null", "file"]
        .iter()
        .map(|&backend| {
            let store: Arc<dyn Durability> = match backend {
                "null" => Arc::new(NullStore),
                _ => Arc::new(
                    FileStore::open(&dir, FileStoreConfig { sync_every: 64 }).expect("open store"),
                ),
            };
            let engine = Engine::with_store(bench_cfg(2), store).expect("durable engine");
            admit_scalar(&engine, s.tenants);
            run_slots(&engine, s.tenants, s.slots);
            let rate = run_slots(&engine, s.tenants, s.slots);
            engine.shutdown();
            serde_json::json!({"backend": backend, "steps_per_sec": rate})
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn measure_hetero(s: &Scale) -> Vec<serde::Value> {
    let fleet = FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ]);
    [HeteroAlgo::Frontier, HeteroAlgo::Greedy]
        .iter()
        .map(|&algo| {
            let engine = Engine::new(bench_cfg(2));
            for i in 0..s.hetero_tenants {
                engine
                    .admit(TenantConfig::hetero(format!("h{i}"), fleet.clone(), algo))
                    .expect("admit");
            }
            let run = |engine: &Engine| -> f64 {
                let start = Instant::now();
                for t in 0..s.slots {
                    let batch: Vec<(String, Cost, Option<f64>)> = (0..s.hetero_tenants)
                        .map(|i| {
                            let load = 0.5 + ((t * 5 + i) % 11) as f64 * 0.5;
                            (format!("h{i}"), Cost::Zero, Some(load))
                        })
                        .collect();
                    engine.step_batch_loads(batch).expect("step");
                }
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                (s.hetero_tenants * s.slots) as f64 / secs
            };
            run(&engine);
            let rate = run(&engine);
            engine.shutdown();
            let name = match algo {
                HeteroAlgo::Frontier => "frontier",
                HeteroAlgo::Greedy => "greedy",
            };
            serde_json::json!({"algo": name, "steps_per_sec": rate})
        })
        .collect()
}

fn measure_rebalance(s: &Scale) -> Vec<serde::Value> {
    ["full", "incremental"]
        .iter()
        .map(|&mode| {
            let mut engine = Engine::new(bench_cfg(4));
            admit_scalar(&engine, s.rebalance_tenants);
            for t in 0..2usize {
                engine
                    .step_batch(scalar_batch(s.rebalance_tenants, t))
                    .expect("step");
            }
            // Swing 4↔8 an even number of times so the engine ends where it
            // started; each swing moves the same deterministic ring diff.
            let swings = if s.quick { 2 } else { 6 };
            let mut moved_total = 0usize;
            let start = Instant::now();
            for k in 0..swings {
                let to = if k % 2 == 0 { 8 } else { 4 };
                let report = match mode {
                    "incremental" => engine.rebalance_incremental(to, None),
                    _ => engine.rebalance(to, None),
                }
                .expect("rebalance");
                moved_total += report.moved;
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            engine.shutdown();
            serde_json::json!({"mode": mode, "moved_per_sec": moved_total as f64 / secs})
        })
        .collect()
}

/// The reference power configuration the energy rows run under: a linear
/// machine, a modest serving capacity, a two-level price wave.
fn bench_power() -> PowerConfig {
    let mut p = PowerConfig::new(PowerSpec::Linear {
        idle: 100.0,
        peak: 250.0,
    });
    p.capacity = 4.0;
    p.price = PriceSchedule::Step {
        period: 3,
        prices: vec![1.0, 5.0],
    };
    p
}

fn measure_energy(s: &Scale) -> Vec<serde::Value> {
    let mut out = Vec::new();
    // Metering overhead: the 4-shard hot path with the meter off vs on.
    for metered in [false, true] {
        let engine = Engine::new(bench_cfg(4));
        if metered {
            engine.set_power(Some(bench_power())).expect("set_power");
        }
        admit_scalar(&engine, s.tenants);
        run_slots(&engine, s.tenants, s.slots); // warm-up pass
        let rate = run_slots(&engine, s.tenants, s.slots);
        engine.shutdown();
        let mode = if metered { "metered" } else { "unmetered" };
        out.push(serde_json::json!({"mode": mode, "rate": rate}));
    }
    // Autoscale decision rate: observe() calls/s on a swinging load, with
    // the counting induced cost vs the priced (modeled-watts) one.
    let ticks = if s.quick { 20_000usize } else { 200_000 };
    for priced in [false, true] {
        let mut cfg = TopologyConfig::new(1, 8);
        cfg.switch_cost = 8.0;
        cfg.cooldown = 0;
        if priced {
            cfg.pricing = Some(bench_power());
        }
        let mut policy = TopologyPolicy::new(cfg, 1).expect("policy");
        let start = Instant::now();
        for t in 0..ticks {
            let events = ((t * 37 + 11) % 500) as u64;
            if let Some(target) = policy.observe(&[events], &[(0, 1)]) {
                let from = policy.status().shards;
                policy.record_applied(from, target, 0);
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let mode = if priced {
            "autoscale_priced"
        } else {
            "autoscale_counted"
        };
        out.push(serde_json::json!({"mode": mode, "rate": ticks as f64 / secs}));
    }
    out
}

/// Codec-layer ingest rate per wire framing: how fast a pre-rendered
/// request stream decodes back into typed records, and how many bytes it
/// spends per event. JSONL parses each line through `parse_record`;
/// binary walks CRC-checked frames and reads the `step_load` body fields.
/// No engine behind either — this isolates the codec, where the binary
/// framing's whole advantage lives (the `wire/serve` Criterion group
/// covers the engine-dominated end-to-end path).
fn measure_wire_codec(s: &Scale) -> Vec<serde::Value> {
    use rsdc_engine::binwire::{
        put_frame, BodyReader, BodyWriter, FrameDecoder, PREAMBLE, TAG_STEP_LOAD,
    };
    use rsdc_engine::wire::parse_record;

    let events = if s.quick { 20_000usize } else { 200_000 };
    let tenants = 200usize;
    let load = |k: usize| 0.5 + (k % 11) as f64 * 0.5;
    let reps = if s.quick { 3 } else { 5 };

    let mut out = Vec::new();

    // JSONL stream: one step line per event (newline-framed).
    let mut text = String::new();
    for k in 0..events {
        use std::fmt::Write;
        writeln!(
            text,
            "{{\"op\":\"step\",\"id\":\"h{}\",\"load\":{}}}",
            k % tenants,
            load(k)
        )
        .expect("write");
    }
    let mut rate = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut n = 0usize;
        for line in text.lines() {
            let rec = parse_record(line).expect("parse");
            std::hint::black_box(&rec);
            n += 1;
        }
        assert_eq!(n, events);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        rate = rate.max(n as f64 / secs);
    }
    out.push(serde_json::json!({
        "framing": "jsonl",
        "steps_per_sec": rate,
        "bytes_per_event": text.len() as f64 / events as f64,
    }));

    // Binary stream: preamble + one TAG_STEP_LOAD frame per event.
    let mut stream = Vec::with_capacity(PREAMBLE.len() + events * 24);
    stream.extend_from_slice(&PREAMBLE);
    let mut payload = Vec::new();
    for k in 0..events {
        BodyWriter::start(&mut payload, TAG_STEP_LOAD)
            .str16(&format!("h{}", k % tenants))
            .f64(load(k));
        put_frame(&mut stream, &payload);
    }
    let mut rate = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut dec = FrameDecoder::new();
        dec.extend(&stream[PREAMBLE.len()..]);
        let mut n = 0usize;
        while let Some(frame) = dec.next_frame().expect("frame") {
            assert_eq!(frame.tag, TAG_STEP_LOAD);
            let mut r = BodyReader::new(frame.body);
            let id = r.str16().expect("id");
            let v = r.f64().expect("load");
            std::hint::black_box((id, v));
            n += 1;
        }
        assert_eq!(n, events);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        rate = rate.max(n as f64 / secs);
    }
    out.push(serde_json::json!({
        "framing": "binary",
        "steps_per_sec": rate,
        "bytes_per_event": stream.len() as f64 / events as f64,
    }));
    out
}

/// End-to-end served throughput: a reactor on loopback, concurrent
/// connections each streaming admits + steps through a private engine,
/// wall clock from first connect to last EOF. Unlike `wire_codec` this
/// prices the full serving stack — reactor turns, framing, engine
/// dispatch and socket I/O — per framing.
fn measure_serve(s: &Scale) -> Vec<serde::Value> {
    use rsdc_engine::binwire::{encode_request_line, PREAMBLE};
    use rsdc_engine::{ServeConfig, Server, WireMode};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let events = if s.quick { 2_000usize } else { 20_000 };
    let tenants = 50usize;
    let conns = 4usize;

    let mut lines: Vec<String> = (0..tenants)
        .map(|i| format!(r#"{{"op":"admit","id":"t{i}","m":{M},"beta":{BETA},"policy":"lcp"}}"#))
        .collect();
    for k in 0..events {
        lines.push(format!(
            r#"{{"op":"step","id":"t{}","cost":{{"Abs":{{"slope":1.0,"center":{}.0}}}}}}"#,
            k % tenants,
            k % (M as usize + 1)
        ));
    }

    ["jsonl", "binary"]
        .iter()
        .map(|&framing| {
            let request: Arc<Vec<u8>> = Arc::new(match framing {
                "jsonl" => (lines.join("\n") + "\n").into_bytes(),
                _ => {
                    let mut out = Vec::new();
                    out.extend_from_slice(&PREAMBLE);
                    let mut payload = Vec::new();
                    for line in &lines {
                        encode_request_line(line, &mut payload, &mut out);
                    }
                    out
                }
            });
            let cfg = ServeConfig {
                engine: bench_cfg(1),
                wire: WireMode::Auto,
                max_conns: conns,
                max_accepts: Some(conns as u64),
                ..ServeConfig::default()
            };
            let mut server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
            let addr = server.local_addr();
            let server = std::thread::spawn(move || server.run().expect("serve"));
            let start = Instant::now();
            let clients: Vec<_> = (0..conns)
                .map(|_| {
                    let request = Arc::clone(&request);
                    std::thread::spawn(move || {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        let mut writer = stream.try_clone().expect("clone");
                        // Write and read concurrently: the reply stream is
                        // as long as the request stream, so a one-sided
                        // client would wedge on full buffers.
                        let sender = std::thread::spawn(move || {
                            writer.write_all(&request).expect("send");
                            writer
                                .shutdown(std::net::Shutdown::Write)
                                .expect("half-close");
                        });
                        let mut sink = Vec::new();
                        stream.read_to_end(&mut sink).expect("drain");
                        sender.join().expect("sender");
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client");
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            server.join().expect("server");
            serde_json::json!({
                "framing": framing,
                "conns": conns,
                "steps_per_sec": (events * conns) as f64 / secs,
            })
        })
        .collect()
}

/// Schema check: every section present, every rate a positive number.
/// Returns the list of violations (empty = valid).
pub fn validate(doc: &serde::Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc["schema"].as_str() != Some(SCHEMA) {
        errs.push(format!("schema != {SCHEMA:?}"));
    }
    let sections: [(&str, &[&str]); 7] = [
        ("throughput", &["shards", "steps_per_sec"]),
        ("store_overhead", &["backend", "steps_per_sec"]),
        ("hetero", &["algo", "steps_per_sec"]),
        ("rebalance", &["mode", "moved_per_sec"]),
        ("energy", &["mode", "rate"]),
        (
            "wire_codec",
            &["framing", "steps_per_sec", "bytes_per_event"],
        ),
        ("serve_throughput", &["framing", "conns", "steps_per_sec"]),
    ];
    for (section, fields) in sections {
        let rows = match doc["results"][section].as_array() {
            Some(rows) if !rows.is_empty() => rows,
            _ => {
                errs.push(format!("results.{section}: missing or empty"));
                continue;
            }
        };
        for (i, row) in rows.iter().enumerate() {
            for field in fields {
                let v = &row[*field];
                let numeric_ok = v.as_f64().is_some_and(|x| x > 0.0);
                if !(numeric_ok || v.as_str().is_some()) {
                    errs.push(format!("results.{section}[{i}].{field}: bad value"));
                }
            }
        }
    }
    // The one machine-independent relative claim the recording makes: the
    // binary framing decodes at least twice as fast as JSONL.
    if let Some(rows) = doc["results"]["wire_codec"].as_array() {
        let rate = |framing: &str| {
            rows.iter()
                .find(|r| r["framing"].as_str() == Some(framing))
                .and_then(|r| r["steps_per_sec"].as_f64())
        };
        match (rate("jsonl"), rate("binary")) {
            (Some(j), Some(b)) if b < 2.0 * j => errs.push(format!(
                "results.wire_codec: binary decode is {b:.0} steps/s vs jsonl {j:.0} — \
                 under the pinned 2x floor"
            )),
            (Some(_), Some(_)) => {}
            _ => errs.push("results.wire_codec: missing jsonl/binary rows".into()),
        }
    }
    errs
}

/// The deterministic projection `--shape` prints: schema tag and full
/// section/row structure with every measured number replaced by `"_"`.
/// Quick and full runs of the same binary project identically, so the
/// nightly job byte-diffs a fresh run's shape against the recording's.
fn shape(doc: &serde::Value) -> serde::Value {
    fn strip(v: &serde::Value) -> serde::Value {
        match v {
            serde::Value::Number(_) => serde::Value::String("_".into()),
            serde::Value::Array(items) => serde::Value::Array(items.iter().map(strip).collect()),
            serde::Value::Object(fields) => serde::Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect::<Vec<_>>(),
            ),
            other => other.clone(),
        }
    }
    serde_json::json!({
        "schema": doc["schema"].clone(),
        "results": strip(&doc["results"]),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(path) = opt("--shape") {
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc: serde::Value =
            serde_json::from_str(&data).unwrap_or_else(|e| panic!("parsing {path}: {e:?}"));
        println!(
            "{}",
            serde_json::to_string_pretty(&shape(&doc)).expect("render")
        );
        return;
    }

    if let Some(path) = opt("--validate") {
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc: serde::Value =
            serde_json::from_str(&data).unwrap_or_else(|e| panic!("parsing {path}: {e:?}"));
        let errs = validate(&doc);
        if errs.is_empty() {
            println!("{path}: valid {SCHEMA}");
            return;
        }
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let scale = Scale::new(flag("--quick"));
    eprintln!(
        "engine_bench: {} tenants x {} slots{}",
        scale.tenants,
        scale.slots,
        if scale.quick { " (quick)" } else { "" }
    );
    let throughput = measure_throughput(&scale);
    eprintln!("engine_bench: throughput done");
    let store_overhead = measure_store_overhead(&scale);
    eprintln!("engine_bench: store overhead done");
    let hetero = measure_hetero(&scale);
    eprintln!("engine_bench: hetero done");
    let rebalance = measure_rebalance(&scale);
    eprintln!("engine_bench: rebalance done");
    let energy = measure_energy(&scale);
    eprintln!("engine_bench: energy done");
    let wire_codec = measure_wire_codec(&scale);
    eprintln!("engine_bench: wire codec done");
    let serve_throughput = measure_serve(&scale);
    eprintln!("engine_bench: serve throughput done");

    let doc = serde_json::json!({
        "schema": SCHEMA,
        "quick": scale.quick,
        "tenants": scale.tenants,
        "slots": scale.slots,
        "results": {
            "throughput": serde::Value::Array(throughput),
            "store_overhead": serde::Value::Array(store_overhead),
            "hetero": serde::Value::Array(hetero),
            "rebalance": serde::Value::Array(rebalance),
            "energy": serde::Value::Array(energy),
            "wire_codec": serde::Value::Array(wire_codec),
            "serve_throughput": serde::Value::Array(serve_throughput),
        },
    });
    let errs = validate(&doc);
    assert!(errs.is_empty(), "self-validation failed: {errs:?}");
    let text = serde_json::to_string_pretty(&doc).expect("render") + "\n";
    match opt("--out") {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("engine_bench: wrote {path}");
        }
        None => print!("{text}"),
    }
}
