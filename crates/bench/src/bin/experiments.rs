//! Experiment runner CLI.
//!
//! ```text
//! experiments [--quick] [--json <dir>] [id ...]
//! ```
//!
//! With no ids, runs the full E1–E12 suite. Markdown reports go to stdout;
//! `--json <dir>` additionally writes one JSON file per report (consumed
//! when refreshing EXPERIMENTS.md).

use rsdc_bench::experiments::{run_by_id, ALL};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => {
                json_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] [--json <dir>] [e1 .. e12]");
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_ascii_lowercase()),
        }
    }
    if ids.is_empty() {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0usize;
    for id in &ids {
        let Some(report) = run_by_id(id, quick) else {
            eprintln!("unknown experiment id {id:?} (expected e1..e12)");
            failures += 1;
            continue;
        };
        print!("{}", report.to_markdown());
        if !report.pass {
            failures += 1;
        }
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{id}.json");
            match serde_json::to_string_pretty(&report) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(&path, s) {
                        eprintln!("cannot write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("cannot serialize {id}: {e}"),
            }
        }
    }

    if failures == 0 {
        eprintln!("all {} experiment(s) reproduced", ids.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) FAILED");
        ExitCode::FAILURE
    }
}
