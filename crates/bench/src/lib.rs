//! # rsdc-bench — experiment harness and benchmarks
//!
//! Regenerates every artifact of the paper (see the DESIGN.md experiment
//! index E1–E12). Run all of them with
//!
//! ```text
//! cargo run -p rsdc-bench --release --bin experiments
//! ```
//!
//! or one by id (`experiments e5`), with `--quick` for reduced sizes. The
//! Criterion micro-benchmarks live under `benches/`:
//!
//! * `offline_scaling` — DP vs binary search across `m` and `T` (E3's
//!   microscope);
//! * `online_step` — per-step cost of LCP and the bound tracker;
//! * `rounding` — throughput of the randomized rounding;
//! * `sim_throughput` — slots/second of the cluster simulator.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::{fmt, Report};
