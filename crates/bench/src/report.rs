//! Tabular experiment reports: built programmatically, rendered as
//! GitHub-flavoured markdown (for EXPERIMENTS.md) and serializable to JSON.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One experiment's output: a titled table plus free-form notes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id, e.g. "E4".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The paper artifact being reproduced ("Theorem 2", "Figure 1", ...).
    pub paper_claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Interpretation note appended under the table.
    pub notes: Vec<String>,
    /// Overall verdict: did the measured shape match the claim?
    pub pass: bool,
}

impl Report {
    /// Start a report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            pass: true,
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record a check; failing any check fails the report.
    pub fn check(&mut self, ok: bool, what: impl Into<String>) {
        let what = what.into();
        if ok {
            self.notes.push(format!("PASS: {what}"));
        } else {
            self.notes.push(format!("FAIL: {what}"));
            self.pass = false;
        }
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}", self.id, self.title);
        let _ = writeln!(s, "\n*Paper claim:* {}\n", self.paper_claim);
        let _ = writeln!(s, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(s, "\n- {n}");
        }
        let _ = writeln!(
            s,
            "\n**Verdict: {}**\n",
            if self.pass { "reproduced" } else { "MISMATCH" }
        );
        s
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("E0", "demo", "claim", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.check(true, "looks good");
        let md = r.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("PASS"));
        assert!(md.contains("reproduced"));
    }

    #[test]
    fn failing_check_flips_verdict() {
        let mut r = Report::new("E0", "demo", "claim", &["a"]);
        r.check(false, "broken");
        assert!(!r.pass);
        assert!(r.to_markdown().contains("MISMATCH"));
    }

    #[test]
    #[should_panic(expected = "row/column mismatch")]
    fn row_length_is_enforced() {
        let mut r = Report::new("E0", "demo", "claim", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(1.23456), "1.2346");
    }
}
