//! Criterion bench: simulator throughput (supports E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsdc_online::lcp::Lcp;
use rsdc_sim::{simulate_online, SimConfig};
use rsdc_workloads::traces::Diurnal;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/lcp_diurnal_T960");
    for m in [16u32, 64, 256] {
        let trace = Diurnal {
            period: 48,
            base: 2.0,
            peak: m as f64 * 0.7,
            noise: 0.1,
        }
        .generate(960, 3);
        let cfg = SimConfig {
            m,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("m", m),
            &(cfg, trace),
            |b, (cfg, trace)| {
                b.iter(|| {
                    let mut lcp = Lcp::new(cfg.m, cfg.cost_model.beta);
                    black_box(simulate_online(cfg, trace, &mut lcp).model_cost)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
);
criterion_main!(benches);
