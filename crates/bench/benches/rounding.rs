//! Criterion bench: randomized rounding throughput (supports E6) and the
//! fractional HalfStep stage.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsdc_core::prelude::*;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::randomized::round_schedule;
use rsdc_online::traits::run_frac;
use std::hint::black_box;

fn frac_schedule(t_len: usize) -> FracSchedule {
    FracSchedule(
        (0..t_len)
            .map(|t| 4.0 + 3.5 * ((t as f64) * 0.1).sin())
            .collect(),
    )
}

fn bench_rounding(c: &mut Criterion) {
    let xs = frac_schedule(4096);
    c.bench_function("rounding/round_schedule_T4096", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(7);
            black_box(round_schedule(rng, black_box(&xs)))
        })
    });
}

fn bench_halfstep(c: &mut Criterion) {
    let inst = Instance::new(
        16,
        2.0,
        (0..1024)
            .map(|t| Cost::abs(1.0, 8.0 + 6.0 * ((t as f64) * 0.2).sin()))
            .collect::<Vec<_>>(),
    )
    .expect("params");
    c.bench_function("rounding/halfstep_T1024", |b| {
        b.iter(|| {
            let mut alg = HalfStep::new(16, 2.0, EvalMode::Interpolate);
            black_box(run_frac(&mut alg, black_box(&inst)))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rounding, bench_halfstep
);
criterion_main!(benches);
