//! Criterion bench: the wire codec layer — binary framing vs JSONL — on
//! the three axes that matter for ingest cost:
//!
//! - `wire/decode` — requests/s turning a pre-rendered stream back into
//!   typed records: `parse_record` per JSONL line vs frame walk +
//!   `BodyReader` field reads for binary. This is the pure codec gap the
//!   recorded `BENCH_engine.json` `wire_codec` section pins (binary must
//!   hold ≥2x).
//! - `wire/encode` — requests/s rendering a step request from typed
//!   fields: JSON text formatting vs `BodyWriter` + `put_frame`.
//! - `wire/serve` — end-to-end events/s through a real engine behind each
//!   framing (`Session::handle_lines` vs `BinSession::feed`/`finish`).
//!   The engine dominates here, so the gap narrows — the point of the
//!   group is that binary never loses.
//!
//! Streams are hetero load-steps (`TAG_STEP_LOAD`, the hot compact tag)
//! so both framings carry the same semantic payload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsdc_engine::binwire::{
    put_frame, BinSession, BodyReader, BodyWriter, FrameDecoder, PREAMBLE, TAG_STEP_LOAD,
};
use rsdc_engine::wire::{parse_record, Session};
use rsdc_engine::{Engine, EngineConfig, FleetSpec, HeteroAlgo, TenantConfig};
use rsdc_hetero::ServerType;

const TENANTS: usize = 200;
const SLOTS: usize = 50;
const EVENTS: usize = TENANTS * SLOTS;

fn load_at(slot: usize, tenant: usize) -> f64 {
    0.5 + ((slot * 5 + tenant) % 11) as f64 * 0.5
}

/// The JSONL side of the stream: one step line per (slot, tenant).
fn jsonl_lines() -> Vec<String> {
    let mut lines = Vec::with_capacity(EVENTS);
    for t in 0..SLOTS {
        for i in 0..TENANTS {
            lines.push(format!(
                "{{\"op\":\"step\",\"id\":\"h{i}\",\"load\":{}}}",
                load_at(t, i)
            ));
        }
    }
    lines
}

/// The same stream as binary frames (preamble + one `TAG_STEP_LOAD` frame
/// per event), built natively rather than transcoded.
fn binary_stream() -> Vec<u8> {
    let mut out = Vec::with_capacity(PREAMBLE.len() + EVENTS * 24);
    out.extend_from_slice(&PREAMBLE);
    let mut payload = Vec::new();
    for t in 0..SLOTS {
        for i in 0..TENANTS {
            BodyWriter::start(&mut payload, TAG_STEP_LOAD)
                .str16(&format!("h{i}"))
                .f64(load_at(t, i));
            put_frame(&mut out, &payload);
        }
    }
    out
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode");
    group.throughput(Throughput::Elements(EVENTS as u64));

    let lines = jsonl_lines();
    group.bench_with_input(BenchmarkId::new("framing", "jsonl"), &(), |b, _| {
        b.iter(|| {
            let mut n = 0usize;
            for line in &lines {
                let rec = parse_record(line).expect("parse");
                black_box(&rec);
                n += 1;
            }
            n
        })
    });

    let stream = binary_stream();
    group.bench_with_input(BenchmarkId::new("framing", "binary"), &(), |b, _| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.extend(&stream[PREAMBLE.len()..]);
            let mut n = 0usize;
            while let Some(frame) = dec.next_frame().expect("frame") {
                assert_eq!(frame.tag, TAG_STEP_LOAD);
                let mut r = BodyReader::new(frame.body);
                let id = r.str16().expect("id");
                let load = r.f64().expect("load");
                black_box((id, load));
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode");
    group.throughput(Throughput::Elements(EVENTS as u64));

    group.bench_with_input(BenchmarkId::new("framing", "jsonl"), &(), |b, _| {
        b.iter(|| {
            let mut out = String::new();
            for t in 0..SLOTS {
                for i in 0..TENANTS {
                    use std::fmt::Write;
                    writeln!(
                        out,
                        "{{\"op\":\"step\",\"id\":\"h{i}\",\"load\":{}}}",
                        load_at(t, i)
                    )
                    .expect("write");
                }
            }
            out.len()
        })
    });

    group.bench_with_input(BenchmarkId::new("framing", "binary"), &(), |b, _| {
        b.iter(|| {
            let mut out = Vec::new();
            out.extend_from_slice(&PREAMBLE);
            let mut payload = Vec::new();
            let mut id = String::new();
            for t in 0..SLOTS {
                for i in 0..TENANTS {
                    use std::fmt::Write;
                    id.clear();
                    write!(id, "h{i}").expect("write");
                    BodyWriter::start(&mut payload, TAG_STEP_LOAD)
                        .str16(&id)
                        .f64(load_at(t, i));
                    put_frame(&mut out, &payload);
                }
            }
            out.len()
        })
    });
    group.finish();
}

/// A fresh hetero engine (metrics off, the hot-path configuration) ready
/// to serve the step stream.
fn serve_engine() -> Session {
    let mut cfg = EngineConfig::with_shards(2);
    cfg.metrics = false;
    let engine = Engine::new(cfg);
    let fleet = FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ]);
    for i in 0..TENANTS {
        engine
            .admit(TenantConfig::hetero(
                format!("h{i}"),
                fleet.clone(),
                HeteroAlgo::Greedy,
            ))
            .expect("admit");
    }
    Session::new(engine)
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/serve");
    group.throughput(Throughput::Elements(EVENTS as u64));

    let lines = jsonl_lines();
    group.bench_with_input(BenchmarkId::new("framing", "jsonl"), &(), |b, _| {
        let mut session = serve_engine();
        b.iter(|| {
            let replies = session.handle_lines(lines.iter().map(|s| s.as_str()));
            assert_eq!(replies.len(), EVENTS);
            replies.len()
        })
    });

    let stream = binary_stream();
    group.bench_with_input(BenchmarkId::new("framing", "binary"), &(), |b, _| {
        // One BinSession per sample: the preamble handshake happens once
        // per connection, and `finish` is what flushes the final batch.
        let mut session = Some(serve_engine());
        b.iter(|| {
            let mut bin = BinSession::new(session.take().expect("session"));
            let mut out = Vec::new();
            bin.feed(&stream, &mut out);
            bin.finish(&mut out);
            assert!(!out.is_empty());
            session = Some(bin.into_session());
            out.len()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decode, bench_encode, bench_serve
);
criterion_main!(benches);
