//! Criterion bench: per-step cost of the online machinery (supports E4).
//!
//! LCP's step is O(m): the bound tracker performs two relaxation scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsdc_core::prelude::*;
use rsdc_online::bounds::BoundTracker;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::OnlineAlgorithm;
use std::hint::black_box;

fn bench_lcp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/lcp_full_run_T1024");
    for m in [16u32, 256, 4096] {
        let costs: Vec<Cost> = (0..1024)
            .map(|t| Cost::abs(1.0, (t % (m as usize + 1)) as f64))
            .collect();
        group.bench_with_input(BenchmarkId::new("lcp", m), &costs, |b, costs| {
            b.iter(|| {
                let mut lcp = Lcp::new(m, 2.0);
                let mut acc = 0u64;
                for f in costs {
                    acc += lcp.step(black_box(f)) as u64;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_tracker_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/bound_tracker_T1024");
    for m in [16u32, 256, 4096] {
        let costs: Vec<Cost> = (0..1024)
            .map(|t| Cost::quadratic(0.5, (t % (m as usize + 1)) as f64, 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("tracker", m), &costs, |b, costs| {
            b.iter(|| {
                let mut tr = BoundTracker::new(m, 2.0);
                for f in costs {
                    tr.step(black_box(f));
                }
                black_box((tr.x_low(), tr.x_up()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lcp_step, bench_tracker_step
);
criterion_main!(benches);
