//! Criterion bench: offline solver scaling (experiment E3's microscope).
//!
//! Series: `dp` (O(T m)) and `binsearch` (O(T log m)) across `m` at fixed
//! `T`, plus a `T` sweep at fixed `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsdc_core::prelude::*;
use rsdc_offline::{binsearch, dp};
use std::hint::black_box;

fn workload(m: u32, t_len: usize) -> Instance {
    let costs = (0..t_len)
        .map(|t| {
            let target = (m as f64 / 2.0) * (1.0 + ((t as f64) * 0.05).sin());
            Cost::abs(1.0, target)
        })
        .collect();
    Instance::new(m, 2.0, costs).expect("valid instance")
}

fn bench_m_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/m_sweep_T512");
    for m in [64u32, 256, 1024, 4096] {
        let inst = workload(m, 512);
        group.bench_with_input(BenchmarkId::new("dp", m), &inst, |b, inst| {
            b.iter(|| black_box(dp::solve_cost_only(black_box(inst))))
        });
        group.bench_with_input(BenchmarkId::new("binsearch", m), &inst, |b, inst| {
            b.iter(|| black_box(binsearch::solve(black_box(inst)).cost))
        });
    }
    group.finish();
}

fn bench_t_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/T_sweep_m512");
    for t_len in [256usize, 1024, 4096] {
        let inst = workload(512, t_len);
        group.bench_with_input(BenchmarkId::new("binsearch", t_len), &inst, |b, inst| {
            b.iter(|| black_box(binsearch::solve(black_box(inst)).cost))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_m_sweep, bench_t_sweep
);
criterion_main!(benches);
