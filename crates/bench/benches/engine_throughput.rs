//! Criterion bench: engine policy-steps/second versus shard count on a
//! synthetic 10k-tenant workload, plus the durability overhead of
//! journaling every batch through `rsdc-store`.
//!
//! Each sample streams one full slot — a batch of `(tenant, cost)` events,
//! one per tenant — through the engine; throughput is reported in
//! policy-steps (elements) per second for shard counts 1, 2, 4 and 8
//! (`steps_10k_tenants`) and for `NullStore` vs `FileStore` backends at a
//! fixed shard count (`store_overhead`), which prices the WAL's
//! serialize + write(+ batched fsync) cost per event.
//!
//! Note: shard scaling is wall-clock parallelism, so the curve is flat on
//! single-core runners; on an N-core machine the batch work fans out to
//! min(N, shards) threads.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rsdc_core::Cost;
use rsdc_engine::{Engine, EngineConfig, FleetSpec, HeteroAlgo, PolicySpec, TenantConfig};
use rsdc_hetero::ServerType;
use rsdc_store::{Durability, FileStore, FileStoreConfig, NullStore};
use std::sync::Arc;

const TENANTS: usize = 10_000;
const M: u32 = 128;
const BETA: f64 = 4.0;

/// Benches run with the metrics registry disabled — the documented
/// hot-path configuration — so the numbers price the engine itself, not
/// the observability layer. (`engine_bench` records the same shape to
/// `BENCH_engine.json`.)
fn bench_cfg(shards: usize) -> EngineConfig {
    let mut cfg = EngineConfig::with_shards(shards);
    cfg.metrics = false;
    cfg
}

fn setup(shards: usize) -> Engine {
    let engine = Engine::new(bench_cfg(shards));
    for i in 0..TENANTS {
        let policy = if i % 2 == 0 {
            PolicySpec::Lcp
        } else {
            PolicySpec::HalfStepRounded { seed: i as u64 }
        };
        engine
            .admit(TenantConfig::new(format!("t{i}"), M, BETA, policy))
            .expect("admit");
    }
    engine
}

/// Pre-built slot batches so sampling measures engine dispatch + policy
/// stepping, not string formatting.
fn slot_batches(n: usize) -> Vec<Vec<(String, Cost)>> {
    (0..n)
        .map(|t| {
            (0..TENANTS)
                .map(|i| {
                    let center = ((t * 5 + i) % (M as usize + 1)) as f64;
                    (format!("t{i}"), Cost::abs(1.0, center))
                })
                .collect()
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps_10k_tenants");
    group.throughput(Throughput::Elements(TENANTS as u64));
    let batches = slot_batches(16);
    for shards in [1usize, 2, 4, 8] {
        let engine = setup(shards);
        let mut t = 0usize;
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            // The clone is setup, not workload: keep it out of the timing.
            b.iter_batched(
                || {
                    let batch = batches[t % batches.len()].clone();
                    t += 1;
                    batch
                },
                |batch| engine.step_batch(batch).expect("step"),
                BatchSize::PerIteration,
            )
        });
        engine.shutdown();
    }
    group.finish();
}

const HETERO_TENANTS: usize = 500;

/// Heterogeneous tenants: each policy step is an `O(S^2)` frontier advance
/// over the configuration lattice (here two classes, `S = 4 * 3 = 12`), so
/// per-step cost is dominated by the DP — this group prices it against the
/// scalar groups above. Frontier vs greedy isolates the DP itself from the
/// plain lattice scan.
fn bench_hetero_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/hetero_steps_500_tenants");
    group.throughput(Throughput::Elements(HETERO_TENANTS as u64));
    let fleet = FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ]);
    let load_batches: Vec<Vec<(String, Cost, Option<f64>)>> = (0..16)
        .map(|t| {
            (0..HETERO_TENANTS)
                .map(|i| {
                    let load = 0.5 + ((t * 5 + i) % 11) as f64 * 0.5;
                    (format!("h{i}"), Cost::Zero, Some(load))
                })
                .collect()
        })
        .collect();
    for algo in [HeteroAlgo::Frontier, HeteroAlgo::Greedy] {
        let engine = Engine::new(bench_cfg(2));
        for i in 0..HETERO_TENANTS {
            engine
                .admit(TenantConfig::hetero(format!("h{i}"), fleet.clone(), algo))
                .expect("admit");
        }
        let name = match algo {
            HeteroAlgo::Frontier => "frontier",
            HeteroAlgo::Greedy => "greedy",
        };
        let mut t = 0usize;
        group.bench_with_input(BenchmarkId::new("algo", name), &name, |b, _| {
            b.iter_batched(
                || {
                    let batch = load_batches[t % load_batches.len()].clone();
                    t += 1;
                    batch
                },
                |batch| engine.step_batch_loads(batch).expect("step"),
                BatchSize::PerIteration,
            )
        });
        engine.shutdown();
    }
    group.finish();
}

const OVERHEAD_TENANTS: usize = 500;

/// `NullStore` vs `FileStore`: the engine is identical, only the shard
/// journaling hook changes, so the gap is the pure durability overhead
/// (per-batch JSON serialization + WAL write + fsync every 64 records).
fn bench_store_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/store_overhead_500_tenants");
    group.throughput(Throughput::Elements(OVERHEAD_TENANTS as u64));
    let batches: Vec<Vec<(String, Cost)>> = (0..16)
        .map(|t| {
            (0..OVERHEAD_TENANTS)
                .map(|i| {
                    let center = ((t * 5 + i) % (M as usize + 1)) as f64;
                    (format!("t{i}"), Cost::abs(1.0, center))
                })
                .collect()
        })
        .collect();
    let dir = std::env::temp_dir()
        .join("rsdc-bench-store")
        .join(format!("wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for backend in ["null", "file"] {
        let store: Arc<dyn Durability> = match backend {
            "null" => Arc::new(NullStore),
            _ => Arc::new(
                FileStore::open(&dir, FileStoreConfig { sync_every: 64 }).expect("open store"),
            ),
        };
        let engine = Engine::with_store(bench_cfg(2), store).expect("durable engine");
        for i in 0..OVERHEAD_TENANTS {
            engine
                .admit(TenantConfig::new(format!("t{i}"), M, BETA, PolicySpec::Lcp))
                .expect("admit");
        }
        let mut t = 0usize;
        group.bench_with_input(BenchmarkId::new("backend", backend), &backend, |b, _| {
            b.iter_batched(
                || {
                    // Setup (untimed): pick the slot batch; checkpoint
                    // periodically so the WAL stays truncated, as a real
                    // deployment would run it.
                    if t > 0 && t.is_multiple_of(256) {
                        engine.checkpoint().expect("checkpoint");
                    }
                    let batch = batches[t % batches.len()].clone();
                    t += 1;
                    batch
                },
                |batch| engine.step_batch(batch).expect("step"),
                BatchSize::PerIteration,
            )
        });
        engine.shutdown();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

const REBALANCE_TENANTS: usize = 1_000;

/// Migration cost: every sample is one full `Engine::rebalance` swinging
/// a 1k-tenant fleet between 4 and 8 shards, so throughput reads as
/// tenants/s migrated (every tenant is snapshot→restored onto the new
/// worker set; the ring only *moves* the consistent-hashing minority).
/// The `durable` variant adds the write-ahead `Rebalance` record and the
/// fencing full-state checkpoint — the price of crash-safe elasticity.
fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rebalance_1k_tenants");
    group.throughput(Throughput::Elements(REBALANCE_TENANTS as u64));
    let dir = std::env::temp_dir()
        .join("rsdc-bench-rebalance")
        .join(format!("wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for backend in ["ephemeral", "durable"] {
        let mut engine = match backend {
            "ephemeral" => Engine::new(bench_cfg(4)),
            _ => Engine::with_store(
                bench_cfg(4),
                Arc::new(
                    FileStore::open(&dir, FileStoreConfig { sync_every: 64 }).expect("open store"),
                ),
            )
            .expect("durable engine"),
        };
        for i in 0..REBALANCE_TENANTS {
            let policy = if i % 2 == 0 {
                PolicySpec::Lcp
            } else {
                PolicySpec::HalfStepRounded { seed: i as u64 }
            };
            engine
                .admit(TenantConfig::new(format!("t{i}"), M, BETA, policy))
                .expect("admit");
        }
        // A few streamed slots so migrated snapshots carry real state.
        for t in 0..4usize {
            let batch = (0..REBALANCE_TENANTS)
                .map(|i| {
                    let center = ((t * 5 + i) % (M as usize + 1)) as f64;
                    (format!("t{i}"), Cost::abs(1.0, center))
                })
                .collect();
            engine.step_batch(batch).expect("step");
        }
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("backend", backend), &backend, |b, _| {
            b.iter(|| {
                flip = !flip;
                let report = engine
                    .rebalance(if flip { 8 } else { 4 }, None)
                    .expect("rebalance");
                assert_eq!(report.tenants, REBALANCE_TENANTS);
                report.moved
            })
        });
        engine.shutdown();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Incremental vs full migration on the same topology swing: each sample
/// re-partitions a 1k-tenant fleet between 4 and 8 shards, and throughput
/// reads as tenants/s **moved** (the ring diff, `~1/2` of the fleet on a
/// 4↔8 swing — both paths move the same set, so the number isolates the
/// mechanism). The full path additionally re-installs every unmoved
/// tenant onto fresh workers and restarts all threads; the incremental
/// path touches only the diff, which is the entire point of the
/// `mode:"incremental"` rebalance and the autoscale policy built on it.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/incremental_vs_full_rebalance");
    // Moved set on a 4↔8 vnode-default swing (measured once below so the
    // throughput denominator is honest).
    for mode in ["full", "incremental"] {
        let mut engine = Engine::new(bench_cfg(4));
        for i in 0..REBALANCE_TENANTS {
            engine
                .admit(TenantConfig::new(format!("t{i}"), M, BETA, PolicySpec::Lcp))
                .expect("admit");
        }
        for t in 0..4usize {
            let batch = (0..REBALANCE_TENANTS)
                .map(|i| {
                    let center = ((t * 5 + i) % (M as usize + 1)) as f64;
                    (format!("t{i}"), Cost::abs(1.0, center))
                })
                .collect();
            engine.step_batch(batch).expect("step");
        }
        // The 4→8 diff size is deterministic for a fixed ring.
        let moved = {
            use rsdc_engine::ring::{moved_ids, HashRing};
            use rsdc_engine::RingSpec;
            let ids: Vec<String> = (0..REBALANCE_TENANTS).map(|i| format!("t{i}")).collect();
            moved_ids(
                &HashRing::new(RingSpec::new(4, 64)),
                &HashRing::new(RingSpec::new(8, 64)),
                ids.iter().map(|s| s.as_str()),
            )
            .len()
        };
        group.throughput(Throughput::Elements(moved as u64));
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, _| {
            b.iter(|| {
                flip = !flip;
                let to = if flip { 8 } else { 4 };
                let report = match mode {
                    "incremental" => engine.rebalance_incremental(to, None),
                    _ => engine.rebalance(to, None),
                }
                .expect("rebalance");
                assert_eq!(report.moved, moved);
                report.moved
            })
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput, bench_hetero_throughput, bench_store_overhead,
        bench_rebalance, bench_incremental_vs_full
);
criterion_main!(benches);
