//! Criterion bench: engine policy-steps/second versus shard count on a
//! synthetic 10k-tenant workload.
//!
//! Each sample streams one full slot — a batch of 10 000 `(tenant, cost)`
//! events, one per tenant — through the engine; throughput is reported in
//! policy-steps (elements) per second for shard counts 1, 2, 4 and 8.
//!
//! Note: shard scaling is wall-clock parallelism, so the curve is flat on
//! single-core runners; on an N-core machine the batch work fans out to
//! min(N, shards) threads.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rsdc_core::Cost;
use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig};

const TENANTS: usize = 10_000;
const M: u32 = 128;
const BETA: f64 = 4.0;

fn setup(shards: usize) -> Engine {
    let engine = Engine::new(EngineConfig::with_shards(shards));
    for i in 0..TENANTS {
        let policy = if i % 2 == 0 {
            PolicySpec::Lcp
        } else {
            PolicySpec::HalfStepRounded { seed: i as u64 }
        };
        engine
            .admit(TenantConfig::new(format!("t{i}"), M, BETA, policy))
            .expect("admit");
    }
    engine
}

/// Pre-built slot batches so sampling measures engine dispatch + policy
/// stepping, not string formatting.
fn slot_batches(n: usize) -> Vec<Vec<(String, Cost)>> {
    (0..n)
        .map(|t| {
            (0..TENANTS)
                .map(|i| {
                    let center = ((t * 5 + i) % (M as usize + 1)) as f64;
                    (format!("t{i}"), Cost::abs(1.0, center))
                })
                .collect()
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps_10k_tenants");
    group.throughput(Throughput::Elements(TENANTS as u64));
    let batches = slot_batches(16);
    for shards in [1usize, 2, 4, 8] {
        let engine = setup(shards);
        let mut t = 0usize;
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            // The clone is setup, not workload: keep it out of the timing.
            b.iter_batched(
                || {
                    let batch = batches[t % batches.len()].clone();
                    t += 1;
                    batch
                },
                |batch| engine.step_batch(batch).expect("step"),
                BatchSize::PerIteration,
            )
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput
);
criterion_main!(benches);
