//! Shared helpers for the runnable examples: tiny table printer so each
//! example's output is readable in a terminal.

#![warn(missing_docs)]

/// Print an aligned text table: a header row plus data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a float for example output.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting() {
        assert_eq!(super::f(123.456), "123.5");
        assert_eq!(super::f(1.23456), "1.235");
    }
}
