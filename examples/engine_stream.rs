//! Streaming engine demo: a multi-tenant fleet of online autoscalers,
//! plus a crash-recovery drill against the durable store.
//!
//! Admits one tenant per policy family, streams a week-long diurnal trace
//! through the sharded engine in per-slot batches, interrupts one tenant
//! mid-week with a snapshot/restore cycle, and prints the per-tenant
//! competitive-ratio table plus per-shard statistics. A second, durable
//! engine journals the same stream into a WAL + checkpoint store, gets
//! killed mid-trace, recovers from disk, finishes the stream — and its
//! final reports are verified byte-identical to the uninterrupted run.
//!
//! ```text
//! cargo run --release -p rsdc-examples --example engine_stream
//! ```

use rsdc_core::Cost;
use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig};
use rsdc_examples::{f, print_table};
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::Weekly;
use serde::Serialize as _;
use std::sync::Arc;

fn main() {
    let trace = Weekly::default().generate(48 * 7, 42);
    let model = CostModel::default();
    let m = rsdc_workloads::fleet_size(&trace, 0.8);

    let tenants: Vec<(&str, PolicySpec)> = vec![
        ("lcp", PolicySpec::Lcp),
        ("halfstep", PolicySpec::HalfStepRounded { seed: 1 }),
        ("flcp-k4", PolicySpec::FlcpRounded { k: 4, seed: 1 }),
        ("memoryless", PolicySpec::MemorylessRounded { seed: 1 }),
        ("lookahead-6", PolicySpec::Lookahead { window: 6 }),
        ("followmin", PolicySpec::FollowTheMinimizer),
        ("hysteresis-2", PolicySpec::Hysteresis { band: 2 }),
    ];

    let engine = Engine::new(EngineConfig::with_shards(4));
    println!(
        "engine: {} shards, {} tenants, m = {m}, beta = {}, {} slots\n",
        engine.shards(),
        tenants.len(),
        model.beta,
        trace.len()
    );
    for (id, policy) in &tenants {
        engine
            .admit(TenantConfig::new(*id, m, model.beta, policy.clone()).with_opt_tracking())
            .expect("admit");
    }

    // Stream slot-major: every tenant sees slot t in one batched call.
    let snapshot_at = trace.len() / 2;
    for (t, &load) in trace.loads.iter().enumerate() {
        let cost = Cost::Server {
            lambda: load,
            params: model.server,
            overload: model.overload,
        };
        let batch: Vec<(String, Cost, Option<f64>)> = tenants
            .iter()
            .map(|(id, _)| (id.to_string(), cost.clone(), Some(load)))
            .collect();
        engine.step_batch_loads(batch).expect("step");

        if t + 1 == snapshot_at {
            // Mid-week interruption drill: snapshot one tenant, evict it,
            // restore from the snapshot — the stream continues bit-identically.
            let snap = engine.snapshot("lcp").expect("snapshot");
            engine.evict("lcp").expect("evict");
            engine.restore(snap).expect("restore");
            println!(
                "slot {:>3}: snapshot/evict/restore cycle for tenant \"lcp\"\n",
                t + 1
            );
        }
    }
    for (id, _) in &tenants {
        engine.finish(id).expect("finish");
    }

    let reports = engine.report_all().expect("report");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.policy.clone(),
                r.committed.to_string(),
                f(r.breakdown.total()),
                f(r.opt_cost.unwrap_or(f64::NAN)),
                r.ratio.map(f).unwrap_or_else(|| "-".into()),
                r.stats.total_power_ups.to_string(),
                r.stats.phase_count.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "tenant", "policy", "slots", "cost", "opt", "ratio", "ups", "phases",
        ],
        &rows,
    );

    println!();
    let stats = engine.shard_stats().expect("stats");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.shard.to_string(),
                s.tenants.to_string(),
                s.events.to_string(),
                f(s.total_energy),
                format!("{:.3}", s.drop_rate),
                f(s.mean_committed),
            ]
        })
        .collect();
    print_table(
        &["shard", "tenants", "events", "energy", "drop", "mean x"],
        &rows,
    );

    crash_recovery_drill(&trace, &model, m, &tenants, &reports);
}

/// Stream the same fleet through a *durable* engine, kill it mid-trace
/// (no final checkpoint — the tail lives only in the WAL), recover from
/// disk, finish the trace, and verify the reports are byte-identical to
/// the uninterrupted run above.
fn crash_recovery_drill(
    trace: &rsdc_workloads::traces::Trace,
    model: &CostModel,
    m: u32,
    tenants: &[(&str, PolicySpec)],
    uninterrupted: &[rsdc_engine::TenantReport],
) {
    let dir = std::env::temp_dir()
        .join("rsdc-engine-stream-demo")
        .join(format!("wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open_store = || -> Arc<dyn Durability> {
        Arc::new(FileStore::open(&dir, FileStoreConfig { sync_every: 64 }).expect("open store"))
    };

    println!("\ncrash-recovery drill (data dir: {})", dir.display());
    let engine =
        Engine::with_store(EngineConfig::with_shards(4), open_store()).expect("durable engine");
    for (id, policy) in tenants {
        engine
            .admit(TenantConfig::new(*id, m, model.beta, policy.clone()).with_opt_tracking())
            .expect("admit");
    }
    let kill_at = 2 * trace.len() / 3;
    let checkpoint_at = trace.len() / 3;
    for (t, &load) in trace.loads[..kill_at].iter().enumerate() {
        let cost = Cost::Server {
            lambda: load,
            params: model.server,
            overload: model.overload,
        };
        let batch: Vec<(String, Cost, Option<f64>)> = tenants
            .iter()
            .map(|(id, _)| (id.to_string(), cost.clone(), Some(load)))
            .collect();
        engine.step_batch_loads(batch).expect("step");
        if t + 1 == checkpoint_at {
            let ck = engine.checkpoint().expect("checkpoint");
            println!(
                "slot {:>3}: checkpoint seq {} ({} tenants)",
                t + 1,
                ck.seq,
                ck.tenants
            );
        }
    }
    println!(
        "slot {kill_at:>3}: killing the engine (last {} slots live only in the WAL)",
        kill_at - checkpoint_at
    );
    drop(engine); // crash: no checkpoint covers the WAL tail

    let (engine, report) =
        Engine::recover(EngineConfig::with_shards(4), open_store()).expect("recover");
    println!(
        "recovered: checkpoint seq {}, {} tenants, {} WAL records ({} events) replayed",
        report.checkpoint_seq,
        report.tenants_restored,
        report.records_replayed,
        report.events_replayed
    );
    for &load in &trace.loads[kill_at..] {
        let cost = Cost::Server {
            lambda: load,
            params: model.server,
            overload: model.overload,
        };
        let batch: Vec<(String, Cost, Option<f64>)> = tenants
            .iter()
            .map(|(id, _)| (id.to_string(), cost.clone(), Some(load)))
            .collect();
        engine.step_batch_loads(batch).expect("step");
    }
    for (id, _) in tenants {
        engine.finish(id).expect("finish");
    }
    let recovered = engine.report_all().expect("report");

    let as_text = |rs: &[rsdc_engine::TenantReport]| -> Vec<String> {
        rs.iter()
            .map(|r| serde_json::to_string(&r.to_value()).expect("serializable"))
            .collect()
    };
    assert_eq!(
        as_text(&recovered),
        as_text(uninterrupted),
        "recovered engine must finish the trace bit-identically"
    );
    println!(
        "verified: all {} per-tenant reports byte-identical to the uninterrupted run",
        recovered.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
