//! Compare every online algorithm in the library across the synthetic
//! workload corpus: discrete LCP, the randomized rounding algorithm, and
//! the fractional baselines (HalfStep, memoryless balance, OBD) evaluated
//! on the continuous extension.
//!
//! ```text
//! cargo run -p rsdc-examples --example compare_online --release
//! ```

use rsdc_core::prelude::*;
use rsdc_examples::{f, print_table};
use rsdc_online::fractional::{EvalMode, HalfStep, MemorylessBalance, Obd};
use rsdc_online::lcp::Lcp;
use rsdc_online::randomized::RandomizedOnline;
use rsdc_online::traits::{run, run_frac, FractionalAlgorithm};
use rsdc_workloads::traces::standard_corpus;
use rsdc_workloads::{builder::CostModel, fleet_size};

fn main() {
    let model = CostModel::default();
    let mut rows = Vec::new();

    for trace in standard_corpus(400, 99) {
        let m = fleet_size(&trace, 0.8);
        let inst = model.instance(m, &trace);
        let opt = rsdc_offline::dp::solve_cost_only(&inst);

        // Discrete algorithms.
        let mut lcp = Lcp::new(m, model.beta);
        let lcp_cost = cost(&inst, &run(&mut lcp, &inst));
        let mut rnd =
            RandomizedOnline::new(HalfStep::new(m, model.beta, EvalMode::Interpolate), m, 11);
        let rnd_cost = cost(&inst, &run(&mut rnd, &inst));

        // Fractional algorithms on the continuous extension.
        let frac_ratio = |mut a: Box<dyn FractionalAlgorithm>| -> f64 {
            let xs = run_frac(a.as_mut(), &inst);
            frac_cost(&inst, &xs, FracMode::Interpolate) / opt
        };
        let hs = frac_ratio(Box::new(HalfStep::new(
            m,
            model.beta,
            EvalMode::Interpolate,
        )));
        let mb = frac_ratio(Box::new(MemorylessBalance::new(
            m,
            model.beta,
            EvalMode::Interpolate,
        )));
        let obd = frac_ratio(Box::new(Obd::new(
            m,
            model.beta,
            2.0,
            EvalMode::Interpolate,
        )));

        rows.push(vec![
            trace.label.clone(),
            f(lcp_cost / opt),
            f(rnd_cost / opt),
            f(hs),
            f(mb),
            f(obd),
        ]);
    }

    println!("cost ratios against the offline optimum (lower is better)\n");
    print_table(
        &[
            "workload",
            "LCP",
            "Randomized",
            "HalfStep",
            "Balance",
            "OBD(2)",
        ],
        &rows,
    );
    println!("\nLCP is guaranteed <= 3 (Theorem 2); Randomized <= 2 in expectation (Theorem 3).");
}
