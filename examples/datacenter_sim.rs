//! Simulate a week of diurnal load on a data center and compare
//! right-sizing policies: offline optimum, online LCP, the randomized
//! 2-competitive algorithm, and the best static provisioning.
//!
//! ```text
//! cargo run -p rsdc-examples --example datacenter_sim --release
//! ```

use rsdc_examples::{f, print_table};
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::lcp::Lcp;
use rsdc_online::randomized::RandomizedOnline;
use rsdc_sim::{
    simulate_best_static, simulate_offline_optimum, simulate_online, SimConfig, SimReport,
};
use rsdc_workloads::traces::Diurnal;
use rsdc_workloads::{builder::CostModel, fleet_size};

fn row(r: &SimReport) -> Vec<String> {
    vec![
        r.policy.clone(),
        f(r.model_cost),
        f(r.metrics.total_energy()),
        format!("{:.2}%", 100.0 * r.metrics.drop_rate()),
        f(r.metrics.mean_committed()),
        r.metrics.total_wakes().to_string(),
    ]
}

fn main() {
    // One week at 30-minute slots.
    let trace = Diurnal {
        period: 48,
        base: 1.0,
        peak: 12.0,
        noise: 0.1,
    }
    .generate(48 * 7, 7);

    let m = fleet_size(&trace, 0.7);
    let cfg = SimConfig {
        m,
        cost_model: CostModel {
            beta: 6.0,
            ..Default::default()
        },
        ..Default::default()
    };

    println!(
        "simulating {} slots, fleet of {m} servers, peak load {:.1}, beta = {}\n",
        trace.len(),
        trace.peak(),
        cfg.cost_model.beta
    );

    let opt = simulate_offline_optimum(&cfg, &trace);
    let mut lcp = Lcp::new(m, cfg.cost_model.beta);
    let online = simulate_online(&cfg, &trace, &mut lcp);
    let mut rnd = RandomizedOnline::new(
        HalfStep::new(m, cfg.cost_model.beta, EvalMode::Interpolate),
        m,
        7,
    );
    let randomized = simulate_online(&cfg, &trace, &mut rnd);
    let stat = simulate_best_static(&cfg, &trace);

    let rows = vec![row(&opt), row(&online), row(&randomized), row(&stat)];
    print_table(
        &[
            "policy",
            "model cost",
            "energy",
            "drop rate",
            "mean x",
            "wakes",
        ],
        &rows,
    );

    let save = 100.0 * (1.0 - opt.metrics.total_energy() / stat.metrics.total_energy());
    println!("\nright-sizing saves {save:.1}% energy versus the best static fleet");
    assert!(
        online.model_cost <= 3.0 * opt.model_cost + 1e-9,
        "Theorem 2"
    );
}
