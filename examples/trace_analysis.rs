//! Characterize every synthetic workload family and the structure of its
//! optimal right-sizing schedule: shape statistics in, cost decomposition
//! and phase structure out.
//!
//! ```text
//! cargo run -p rsdc-examples --example trace_analysis --release
//! ```

use rsdc_core::analysis;
use rsdc_examples::{f, print_table};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::stats::trace_stats;
use rsdc_workloads::traces::standard_corpus;

fn main() {
    let model = CostModel::default();

    // The corpus covers every generator family, weekly included.
    let traces = standard_corpus(480, 2718);

    println!("workload shape statistics\n");
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|tr| {
            let s = trace_stats(tr);
            vec![
                tr.label.clone(),
                f(s.mean),
                f(s.peak_to_mean),
                f(s.cv),
                f(s.autocorr1),
                f(s.burstiness),
            ]
        })
        .collect();
    print_table(
        &["trace", "mean", "peak/mean", "CV", "autocorr", "burstiness"],
        &rows,
    );

    println!("\noptimal schedule structure (beta = {})\n", model.beta);
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|tr| {
            let m = fleet_size(tr, 0.8);
            let inst = model.instance(m, tr);
            let sol = rsdc_offline::binsearch::solve(&inst);
            let b = analysis::breakdown(&inst, &sol.schedule);
            let st = analysis::stats(&sol.schedule);
            vec![
                tr.label.clone(),
                f(sol.cost),
                format!("{:.1}%", 100.0 * b.switching_share()),
                st.total_power_ups.to_string(),
                st.phase_count.to_string(),
                f(st.mean),
            ]
        })
        .collect();
    print_table(
        &[
            "trace",
            "OPT cost",
            "switch share",
            "power-ups",
            "phases",
            "mean x",
        ],
        &rows,
    );

    println!("\nsmoother workloads (high autocorrelation) should show fewer phases");
    println!("and a smaller switching share — compare diurnal vs bursty rows.");
}
