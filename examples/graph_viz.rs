//! Emit the Figure 1 layered graph in Graphviz DOT format, plus the
//! shortest path (= optimal schedule) as a comment trailer.
//!
//! ```text
//! cargo run -p rsdc-examples --example graph_viz > figure1.dot
//! dot -Tsvg figure1.dot -o figure1.svg
//! ```

use rsdc_core::prelude::*;
use rsdc_offline::graph::Graph;

fn main() {
    // A small instance so the rendering stays readable: T = 4, m = 3.
    let costs = vec![
        Cost::abs(1.0, 2.0),
        Cost::abs(1.0, 0.0),
        Cost::abs(1.0, 3.0),
        Cost::abs(1.0, 1.0),
    ];
    let inst = Instance::new(3, 1.5, costs).expect("valid instance");
    let g = Graph::build(&inst);
    print!("{}", g.to_dot());

    let sp = g.shortest_path();
    eprintln!(
        "// optimal schedule {:?} with cost {:.3} ({} vertices, {} edges)",
        sp.schedule.0,
        sp.cost,
        g.vertex_count(),
        g.edge_count()
    );
}
