//! Right-size a data center with two server generations: old machines
//! (cheap to wake, power-hungry per unit of capacity) and new machines
//! (expensive to wake, efficient). Compares the exact lattice optimum with
//! the coordinate-wise LCP heuristic over a diurnal day.
//!
//! ```text
//! cargo run -p rsdc-examples --example heterogeneous --release
//! ```

use rsdc_examples::{f, print_table};
use rsdc_hetero::{CoordinateLcp, GreedyConfig, HCost, HInstance, ServerType};
use rsdc_workloads::traces::Diurnal;

fn main() {
    let types = vec![
        ServerType {
            count: 6,
            beta: 1.5,
            energy: 1.2,
            capacity: 1.0,
        },
        ServerType {
            count: 4,
            beta: 8.0,
            energy: 1.5,
            capacity: 2.5,
        },
    ];
    let loads = Diurnal {
        period: 24,
        base: 1.0,
        peak: 11.0,
        noise: 0.05,
    }
    .generate(72, 7)
    .loads;

    let inst = HInstance {
        types,
        costs: loads
            .iter()
            .map(|&lambda| HCost::Aggregate {
                lambda,
                delay_weight: 1.0,
                delay_eps: 0.3,
                overload: 30.0,
            })
            .collect(),
    };

    let opt = rsdc_hetero::solve(&inst);
    let mut clcp = CoordinateLcp::new(&inst);
    let xs_lcp: Vec<_> = (1..=inst.horizon()).map(|t| clcp.step(&inst, t)).collect();
    let mut greedy = GreedyConfig::new(inst.dims());
    let xs_greedy: Vec<_> = (1..=inst.horizon())
        .map(|t| greedy.step(&inst, t))
        .collect();

    println!(
        "heterogeneous fleet: {} old + {} new machines, 3 simulated days\n",
        6, 4
    );
    let summarize = |name: &str, xs: &[Vec<u32>]| -> Vec<String> {
        let c = inst.cost(xs);
        let mean_old = xs.iter().map(|x| x[0] as f64).sum::<f64>() / xs.len() as f64;
        let mean_new = xs.iter().map(|x| x[1] as f64).sum::<f64>() / xs.len() as f64;
        vec![
            name.to_string(),
            f(c),
            f(c / opt.cost),
            f(mean_old),
            f(mean_new),
        ]
    };
    let rows = vec![
        summarize("OfflineOptimal", &opt.schedule),
        summarize("CoordinateLCP", &xs_lcp),
        summarize("Greedy", &xs_greedy),
    ];
    print_table(&["policy", "cost", "ratio", "mean old", "mean new"], &rows);

    println!("\nmidday configurations (slots 10-14):");
    for t in 10..14 {
        println!(
            "  slot {t}: load {:.1}, OPT {:?}, LCP {:?}",
            loads[t], opt.schedule[t], xs_lcp[t]
        );
    }
}
