//! Quickstart: define a small right-sizing problem, solve it offline
//! optimally, and run the online LCP algorithm on the same sequence.
//!
//! ```text
//! cargo run -p rsdc-examples --example quickstart
//! ```

use rsdc_core::prelude::*;
use rsdc_examples::{f, print_table};
use rsdc_offline::binsearch;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::{competitive_ratio, run};

fn main() {
    // A data center with 8 servers and power-up cost 3. Over six slots the
    // desired capacity ramps up, dips, and spikes: each slot's operating
    // cost is a convex "V" around the ideal server count.
    let targets = [2.0, 4.0, 5.0, 1.0, 7.0, 3.0];
    let costs: Vec<Cost> = targets.iter().map(|&c| Cost::abs(2.0, c)).collect();
    let inst = Instance::new(8, 3.0, costs).expect("valid instance");

    // Offline optimum in O(T log m).
    let offline = binsearch::solve(&inst);

    // Online: LCP sees one cost function at a time.
    let mut lcp = Lcp::new(inst.m(), inst.beta());
    let online = run(&mut lcp, &inst);
    let (alg_cost, opt_cost, ratio) = competitive_ratio(&inst, &online);

    println!("discrete data-center right-sizing — quickstart\n");
    let rows: Vec<Vec<String>> = (0..inst.horizon())
        .map(|t| {
            vec![
                (t + 1).to_string(),
                f(targets[t]),
                offline.schedule.0[t].to_string(),
                online.0[t].to_string(),
            ]
        })
        .collect();
    print_table(&["slot", "ideal x", "OPT x", "LCP x"], &rows);

    println!();
    println!("offline optimal cost : {}", f(offline.cost));
    println!("online LCP cost      : {}", f(alg_cost));
    println!(
        "competitive ratio    : {} (Theorem 2 guarantees <= 3)",
        f(ratio)
    );
    assert!((opt_cost - offline.cost).abs() < 1e-9);
    assert!(ratio <= 3.0 + 1e-9);
}
