//! Watch the Theorem 4 adversary push LCP's competitive ratio toward 3,
//! and the Theorem 6/8 construction push the fractional algorithm toward 2.
//!
//! ```text
//! cargo run -p rsdc-examples --example adversary_demo --release
//! ```

use rsdc_adversary::continuous::ContinuousAdversary;
use rsdc_adversary::discrete::DiscreteAdversary;
use rsdc_examples::{f, print_table};
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::lcp::Lcp;

fn main() {
    println!("Theorem 4: deterministic adversary vs LCP (ratio -> 3)\n");
    let mut rows = Vec::new();
    for eps in [0.1, 0.05, 0.02, 0.01] {
        let adv = DiscreteAdversary::with_canonical_horizon(eps);
        let mut lcp = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp);
        let (alg, opt, ratio) = duel.ratio();
        rows.push(vec![
            f(eps),
            adv.t_len.to_string(),
            f(alg),
            f(opt),
            f(ratio),
        ]);
    }
    print_table(&["eps", "T", "LCP cost", "OPT", "ratio"], &rows);

    println!("\nTheorems 6/8: continuous adversary vs algorithm B (ratio -> 2)\n");
    let mut rows = Vec::new();
    for eps in [0.25, 0.125, 0.0625] {
        let t_len = (32.0 / (eps * eps)) as usize;
        let adv = ContinuousAdversary { eps, t_len };
        let mut hs = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut hs);
        let c_b = duel.b_cost();
        let opt = duel.grid_opt(64);
        rows.push(vec![
            f(eps),
            t_len.to_string(),
            f(c_b),
            f(opt),
            f(c_b / opt),
        ]);
    }
    print_table(&["eps", "T", "C(B)", "OPT", "ratio"], &rows);
    println!("\nBoth constructions match their theorems: LCP and the randomized");
    println!("algorithm are optimal for the discrete problem.");
}
